"""Trace record types and replay storage.

A trace is a sequence of ``(gap, block_addr, is_write)`` records: the
number of non-memory instructions since the previous access, the
block-aligned address (already shifted by log2(64)), and the access
type.  Generators yield records lazily; a :class:`MaterializedTrace`
freezes a prefix so the *same* reference stream can be replayed
against many policies (the per-figure sweeps depend on this).

Storage is columnar: three flat parallel arrays (``array('Q')`` gaps,
``array('Q')`` addresses, ``bytearray`` write flags) indexed by a
cursor.  The engine's burst loop replays by plain index into
:meth:`MaterializedTrace.replay_columns` — no generator resumption, no
per-record tuple unpacking — which is several times cheaper per record
than the original ``player()`` protocol.  ``player()`` and ``records``
remain as compatibility views for code that still wants record tuples.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, NamedTuple, Sequence, Tuple

#: Address bits reserved per core: app address spaces are disjoint,
#: mirroring multi-programmed (no-sharing) SPEC mixes.
CORE_ADDR_SHIFT = 28


class TraceRecord(NamedTuple):
    gap: int
    addr: int
    is_write: bool


def _as_int_list(column) -> List[int]:
    """A column as a list of *native* Python ints.

    ``array`` and NumPy columns both expose ``tolist()`` — crucially,
    NumPy's yields plain ``int``, not ``np.uint64`` scalars, keeping
    the replay loop's arithmetic on the fast native-int path.
    """
    tolist = getattr(column, "tolist", None)
    return tolist() if tolist is not None else list(column)


#: Replay view: (gaps, addrs, writes) as plain Python lists — list
#: indexing returns cached references instead of materialising a new
#: int per access the way ``array`` subscripting does.
ReplayColumns = Tuple[List[int], List[int], List[bool]]


class MaterializedTrace:
    """A finite trace replayed cyclically (the workload loops forever)."""

    __slots__ = ("gaps", "addrs", "writes", "_replay")

    def __init__(self, records: Sequence[TraceRecord]) -> None:
        if not records:
            raise ValueError("empty trace")
        gaps = array("Q")
        addrs = array("Q")
        writes = bytearray()
        for gap, addr, is_write in records:
            gaps.append(gap)
            addrs.append(addr)
            writes.append(1 if is_write else 0)
        self.gaps = gaps
        self.addrs = addrs
        self.writes = writes
        self._replay: Tuple[ReplayColumns, ...] = ()

    @classmethod
    def from_columns(cls, gaps, addrs, writes) -> "MaterializedTrace":
        """Adopt pre-built columns (no copy, no per-record validation).

        Columns may be ``array``/``bytearray`` (the generator path) or
        any sequence with equivalent integer contents — e.g. the
        strided NumPy views the zero-copy ``load_trace_mmap`` loader
        exposes over an mmapped trace file.
        """
        if not (len(gaps) == len(addrs) == len(writes)):
            raise ValueError("column length mismatch")
        if not len(addrs):
            raise ValueError("empty trace")
        trace = cls.__new__(cls)
        trace.gaps = gaps
        trace.addrs = addrs
        trace.writes = writes
        trace._replay = ()
        return trace

    def __len__(self) -> int:
        return len(self.addrs)

    # ------------------------------------------------------------------
    @property
    def records(self) -> List[TraceRecord]:
        """Record-tuple view (compatibility; built on demand)."""
        return [
            TraceRecord(gap, addr, bool(write))
            for gap, addr, write in zip(self.gaps, self.addrs, self.writes)
        ]

    def player(self) -> Iterator[TraceRecord]:
        """Infinite iterator cycling through the records (legacy protocol)."""
        gaps, addrs, writes = self.replay_columns()
        n = len(addrs)
        cursor = 0
        while True:
            yield TraceRecord(gaps[cursor], addrs[cursor], writes[cursor])
            cursor += 1
            if cursor == n:
                cursor = 0

    def replay_columns(self) -> ReplayColumns:
        """(gaps, addrs, writes) as lists, cached across simulations."""
        if not self._replay:
            self._replay = (
                (
                    _as_int_list(self.gaps),
                    _as_int_list(self.addrs),
                    [w != 0 for w in _as_int_list(self.writes)],
                ),
            )
        return self._replay[0]

    # ------------------------------------------------------------------
    def footprint(self) -> int:
        return len(set(self.addrs))

    def write_fraction(self) -> float:
        return sum(self.writes) / len(self.writes)


def materialize(source: Iterable[TraceRecord], n_records: int) -> MaterializedTrace:
    """Capture the first ``n_records`` records of a generator."""
    gaps = array("Q")
    addrs = array("Q")
    writes = bytearray()
    it = iter(source)
    for _ in range(n_records):
        gap, addr, is_write = next(it)
        gaps.append(gap)
        addrs.append(addr)
        writes.append(1 if is_write else 0)
    return MaterializedTrace.from_columns(gaps, addrs, writes)
