"""Trace record types and players.

A trace is a sequence of ``(gap, block_addr, is_write)`` records: the
number of non-memory instructions since the previous access, the
block-aligned address (already shifted by log2(64)), and the access
type.  Generators yield records lazily; a :class:`MaterializedTrace`
freezes a prefix into a list so the *same* reference stream can be
replayed against many policies (the per-figure sweeps depend on this).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple, Sequence

#: Address bits reserved per core: app address spaces are disjoint,
#: mirroring multi-programmed (no-sharing) SPEC mixes.
CORE_ADDR_SHIFT = 28


class TraceRecord(NamedTuple):
    gap: int
    addr: int
    is_write: bool


class MaterializedTrace:
    """A finite trace replayed cyclically (the workload loops forever)."""

    def __init__(self, records: Sequence[TraceRecord]) -> None:
        if not records:
            raise ValueError("empty trace")
        self.records: List[TraceRecord] = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def player(self) -> Iterator[TraceRecord]:
        """Infinite iterator cycling through the records."""
        records = self.records
        while True:
            yield from records

    def footprint(self) -> int:
        return len({r.addr for r in self.records})

    def write_fraction(self) -> float:
        return sum(1 for r in self.records if r.is_write) / len(self.records)


def materialize(source: Iterable[TraceRecord], n_records: int) -> MaterializedTrace:
    """Capture the first ``n_records`` records of a generator."""
    records: List[TraceRecord] = []
    it = iter(source)
    for _ in range(n_records):
        records.append(next(it))
    return MaterializedTrace(records)
