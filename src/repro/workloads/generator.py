"""Region-based synthetic trace generator.

Each application owns a disjoint slice of the block address space
(``core_id << CORE_ADDR_SHIFT``) laid out as five regions::

    [ loop | scan | rw | random | stream ........................ ]

Every generated access first picks a region by the profile's weights,
then behaves like that region:

* ``loop``   — tight sequential sweep over a small region; repeat
  references arrive well within SRAM residency, producing the clean
  LLC read hits that LHybrid and CA_RWR promote to NVM (loop-blocks);
* ``scan``   — medium cyclic sweep whose reuse distance exceeds the
  SRAM part but fits a 16-way LLC; BH retains this class while
  SRAM-first policies evict it before it can prove reuse;
* ``rw``     — read-modify-write over a small hot set, generating
  dirty, write-reused blocks;
* ``random`` — uniform pointer-chasing over a large region (sparse
  reuse);
* ``stream`` — an ever-advancing pointer over the large remainder of
  the footprint (reuse distance >> LLC), the thrashing traffic TAP
  deflects to SRAM.

Gaps between accesses are exponential with the profile's mean, giving
the analytical core model a realistic arrival process.
"""

from __future__ import annotations

import random
from typing import Iterator

from .profiles import AppProfile
from .trace import CORE_ADDR_SHIFT, TraceRecord

_LOOP, _SCAN, _STREAM, _RW, _RANDOM = range(5)


class AppTraceGenerator:
    """Infinite trace for one application pinned to one core."""

    def __init__(self, profile: AppProfile, core_id: int, seed: int = 0) -> None:
        self.profile = profile
        self.core_id = core_id
        self.base = core_id << CORE_ADDR_SHIFT
        self._rng = random.Random((seed << 8) ^ (core_id * 0x9E3779B1) ^ 0xC0FFEE)

        # Region layout within the app's address slice.  The loop, scan
        # and rw regions own one address slot per program phase; every
        # ``phase_accesses`` accesses the generator rotates to the next
        # slot, shifting the hot working set (SPEC phase behaviour).
        n_phases = profile.n_phases
        self._loop_base = self.base
        self._scan_base = self._loop_base + n_phases * profile.loop_blocks
        self._rw_base = self._scan_base + n_phases * profile.scan_blocks
        self._random_base = self._rw_base + n_phases * profile.rw_blocks
        self._stream_base = self._random_base + profile.random_blocks
        stream_blocks = profile.footprint_blocks - profile.phased_region_blocks
        self._stream_blocks = max(1024, stream_blocks)
        self._phase = 0
        self._accesses_left_in_phase = profile.phase_accesses

        # cumulative region weights (loop, scan, stream, rw, random)
        weights = profile.region_weights
        total = sum(weights)
        acc = 0.0
        self._cum = []
        for weight in weights:
            acc += weight / total
            self._cum.append(acc)

        self._loop_pos = 0
        self._scan_pos = 0
        self._stream_pos = 0
        self._rw_pending_write = 0  # address owed a write (read-modify-write)

    # ------------------------------------------------------------------
    def _gap(self) -> int:
        return int(self._rng.expovariate(1.0 / self.profile.gap_mean))

    def __iter__(self) -> Iterator[TraceRecord]:
        return self

    def _advance_phase(self) -> None:
        self._phase = (self._phase + 1) % self.profile.n_phases
        self._accesses_left_in_phase = self.profile.phase_accesses
        self._loop_pos = 0
        self._scan_pos = 0

    def __next__(self) -> TraceRecord:
        rng = self._rng
        profile = self.profile

        self._accesses_left_in_phase -= 1
        if self._accesses_left_in_phase <= 0:
            self._advance_phase()
        phase = self._phase

        if self._rw_pending_write:
            addr = self._rw_pending_write
            self._rw_pending_write = 0
            return TraceRecord(self._gap(), addr, True)

        u = rng.random()
        cum = self._cum
        if u < cum[_LOOP]:
            addr = self._loop_base + phase * profile.loop_blocks + self._loop_pos
            self._loop_pos += 1
            if self._loop_pos >= profile.loop_blocks:
                self._loop_pos = 0
            return TraceRecord(self._gap(), addr, False)
        if u < cum[_SCAN]:
            addr = self._scan_base + phase * profile.scan_blocks + self._scan_pos
            self._scan_pos += 1
            if self._scan_pos >= profile.scan_blocks:
                self._scan_pos = 0
            return TraceRecord(self._gap(), addr, False)
        if u < cum[_STREAM]:
            addr = self._stream_base + self._stream_pos
            self._stream_pos += 1
            if self._stream_pos >= self._stream_blocks:
                self._stream_pos = 0
            is_write = rng.random() < profile.stream_write_frac
            return TraceRecord(self._gap(), addr, is_write)
        if u < cum[_RW]:
            addr = (
                self._rw_base
                + phase * profile.rw_blocks
                + rng.randrange(profile.rw_blocks)
            )
            if rng.random() < profile.rw_write_frac:
                # read-modify-write: the write follows on the next record
                self._rw_pending_write = addr
            return TraceRecord(self._gap(), addr, False)
        addr = self._random_base + rng.randrange(profile.random_blocks)
        is_write = rng.random() < profile.random_write_frac
        return TraceRecord(self._gap(), addr, is_write)
