"""Trace file I/O: plug externally recorded traces into the simulator.

The synthetic generator covers the paper's evaluation, but a
downstream user reproducing with *real* traces (Pin, DynamoRIO, gem5
ELF traces, ...) only needs to convert them to one of two formats:

* **binary** (``.trc``) — little-endian records ``<IQB`` (gap:u32,
  block address:u64, is_write:u8) after a 16-byte header; compact and
  fast;
* **CSV** — ``gap,addr,is_write`` with ``addr`` in decimal or 0x-hex;
  human-editable.

Addresses must already be block-aligned (byte address >> 6) and carry
the owning core in bits ``CORE_ADDR_SHIFT`` and up, matching
:mod:`repro.workloads.trace`.

Binary traces are *validated*, not trusted: the header magic, version
and declared record count are checked against the bytes actually
present, and any mismatch raises :class:`TraceFormatError` naming the
offending file.  :func:`validate_trace` performs the same checks
without materialising records, and :func:`file_sha256` is the
content-hash helper the campaign checkpoint layer
(:mod:`repro.harness.checkpoint`) reuses for result integrity.

Two loaders share the validation path:

* :func:`load_trace` — the portable ``struct`` decoder, which copies
  every record into fresh ``array`` columns;
* :func:`load_trace_mmap` — a zero-copy loader that ``mmap``\\ s the
  record region and exposes the gap/addr/write columns as strided
  NumPy views straight over the page cache.  Forked campaign workers
  mapping the same cache file then *share* the read-only pages
  instead of each materialising a private copy.  Falls back to
  :func:`load_trace` when NumPy is unavailable.
"""

from __future__ import annotations

import hashlib
import io
import mmap
import os
import struct
from pathlib import Path
from typing import Dict, List, Tuple, Union

try:  # optional: only the zero-copy loader needs it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

from .trace import CORE_ADDR_SHIFT, MaterializedTrace, TraceRecord

#: Exclusive upper bound of a per-core block offset: the address slice
#: below the core-id bits.  The external trace importer validates
#: imported addresses against this so a too-wide address can never
#: alias into another core's address space.
MAX_BLOCK_OFFSET = 1 << CORE_ADDR_SHIFT

_MAGIC = b"REPROTRC"
_VERSION = 1
_HEADER = struct.Struct("<8sII")   # magic, version, record count
_RECORD = struct.Struct("<IQB")    # gap, block addr, is_write

#: NumPy mirror of ``_RECORD``: packed (itemsize 13), little-endian.
_RECORD_DTYPE = (
    _np.dtype([("gap", "<u4"), ("addr", "<u8"), ("write", "u1")])
    if _np is not None
    else None
)

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """A trace file failed integrity validation.

    Carries the offending ``path`` so callers (and the campaign
    failure report) can name the file without string-parsing the
    message.
    """

    def __init__(self, path: PathLike, reason: str):
        super().__init__(f"{path}: {reason}")
        self.path = str(path)
        self.reason = reason


def file_sha256(path: PathLike, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 of a file's bytes (streamed, any size)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


#: ``path -> (size, mtime_ns, ino, ctime_ns, digest)`` memo behind
#: :func:`file_sha256_cached`; bounded so a huge campaign cannot grow
#: it without limit.
_SHA256_CACHE: Dict[str, Tuple[int, int, int, int, str]] = {}
_SHA256_CACHE_MAX = 65536


def file_sha256_cached(path: PathLike) -> str:
    """:func:`file_sha256` memoized by the file's full stat identity.

    Resuming a large campaign re-verifies every completed artefact;
    re-hashing gigabytes of unchanged results dominates that startup.
    A file whose size, mtime (nanosecond resolution), inode *and*
    ctime are all unchanged since the last hash is served from the
    memo; any stat change invalidates the entry and re-hashes.

    Size+mtime alone is not enough: an atomic rewrite (``os.replace``
    of a same-sized temp file) can land within one mtime tick on
    coarse-granularity filesystems, leaving size and mtime identical
    while the bytes changed.  The rename gives the path a *new inode*
    (and a fresh ctime), so keying on those too closes the hole.
    """
    key = os.fspath(path)
    stat = os.stat(key)
    identity = (stat.st_size, stat.st_mtime_ns, stat.st_ino, stat.st_ctime_ns)
    entry = _SHA256_CACHE.get(key)
    if entry is not None and entry[:4] == identity:
        return entry[4]
    digest = file_sha256(key)
    if len(_SHA256_CACHE) >= _SHA256_CACHE_MAX:
        _SHA256_CACHE.clear()
    _SHA256_CACHE[key] = identity + (digest,)
    return digest


def _validate_header(path: PathLike, header: bytes) -> Tuple[int, int]:
    if len(header) != _HEADER.size:
        raise TraceFormatError(
            path, f"truncated header ({len(header)} of {_HEADER.size} bytes)"
        )
    magic, version, count = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise TraceFormatError(path, "not a repro trace file (bad magic)")
    if version != _VERSION:
        raise TraceFormatError(path, f"unsupported version {version}")
    return version, count


def validate_trace(path: PathLike) -> Tuple[int, int]:
    """Check a binary trace's header and size without parsing records.

    Returns ``(version, record_count)``; raises
    :class:`TraceFormatError` on bad magic, unsupported version, or a
    declared record count that disagrees with the bytes actually
    present (short *or* trailing).
    """
    path = Path(path)
    with open(path, "rb") as fh:
        version, count = _validate_header(path, fh.read(_HEADER.size))
    payload_bytes = path.stat().st_size - _HEADER.size
    expected = count * _RECORD.size
    if payload_bytes < expected:
        raise TraceFormatError(
            path,
            f"truncated records: header declares {count} records "
            f"({expected} bytes) but only {payload_bytes} bytes present",
        )
    if payload_bytes > expected:
        raise TraceFormatError(
            path,
            f"trailing data: header declares {count} records "
            f"({expected} bytes) but {payload_bytes} bytes present",
        )
    return version, count


def save_trace(trace: MaterializedTrace, path: PathLike) -> None:
    """Write a trace in the binary ``.trc`` format."""
    pack = _RECORD.pack
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(_MAGIC, _VERSION, len(trace)))
        fh.write(
            b"".join(
                pack(gap, addr, 1 if write else 0)
                for gap, addr, write in zip(trace.gaps, trace.addrs, trace.writes)
            )
        )


def load_trace(path: PathLike) -> MaterializedTrace:
    """Read a binary ``.trc`` trace, validating it first."""
    from array import array

    _, count = validate_trace(path)
    with open(path, "rb") as fh:
        fh.seek(_HEADER.size)
        payload = fh.read(count * _RECORD.size)
    gaps = array("Q")
    addrs = array("Q")
    writes = bytearray()
    try:
        for gap, addr, is_write in _RECORD.iter_unpack(payload):
            gaps.append(gap)
            addrs.append(addr)
            writes.append(1 if is_write else 0)
    except struct.error as exc:  # pragma: no cover - size already checked
        raise TraceFormatError(path, f"undecodable record: {exc}") from None
    return MaterializedTrace.from_columns(gaps, addrs, writes)


def load_trace_mmap(path: PathLike) -> MaterializedTrace:
    """Read a binary ``.trc`` trace zero-copy via ``mmap``.

    Validates exactly like :func:`load_trace`, then maps the record
    region read-only and adopts strided NumPy column views over the
    mapping — no per-record ``struct`` unpacking, no private copy of
    the payload.  Every process mapping the same cache file shares the
    OS page cache, so a fleet of forked workers replaying one trace
    holds it in physical memory *once*.

    The returned trace's columns index and iterate like the ``array``
    columns of :func:`load_trace` and convert to the identical Python
    lists in ``replay_columns`` — byte-identical statistics are gated
    by the golden-digest suite.
    """
    if _np is None:  # pragma: no cover - numpy is baked into the image
        return load_trace(path)
    _, count = validate_trace(path)
    if count == 0:
        raise ValueError("empty trace")
    with open(path, "rb") as fh:
        mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    view = _np.frombuffer(
        mapped, dtype=_RECORD_DTYPE, count=count, offset=_HEADER.size
    )
    # The column views hold a reference to ``view`` (and transitively
    # the mmap), so the mapping lives exactly as long as the trace.
    return MaterializedTrace.from_columns(
        view["gap"], view["addr"], view["write"]
    )


def save_trace_csv(trace: MaterializedTrace, path: PathLike) -> None:
    """Write a trace as ``gap,addr,is_write`` CSV (with header line)."""
    with open(path, "w") as fh:
        fh.write("gap,addr,is_write\n")
        for gap, addr, write in zip(trace.gaps, trace.addrs, trace.writes):
            fh.write(f"{gap},{addr:#x},{1 if write else 0}\n")


def _parse_int(text: str) -> int:
    text = text.strip()
    return int(text, 16) if text.lower().startswith("0x") else int(text)


def load_trace_csv(source: Union[PathLike, io.TextIOBase]) -> MaterializedTrace:
    """Read a CSV trace (header line optional; hex or decimal addrs)."""
    own = not hasattr(source, "read")
    fh = open(source) if own else source
    try:
        records: List[TraceRecord] = []
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line_no == 1 and line.lower().startswith("gap"):
                continue
            parts = line.split(",")
            if len(parts) != 3:
                raise ValueError(f"line {line_no}: expected 3 fields, got {len(parts)}")
            gap = int(parts[0])
            addr = _parse_int(parts[1])
            is_write = parts[2].strip() not in ("0", "", "false", "False")
            if gap < 0 or addr < 0:
                raise ValueError(f"line {line_no}: negative field")
            records.append(TraceRecord(gap, addr, is_write))
    finally:
        if own:
            fh.close()
    return MaterializedTrace(records)
