"""Workloads: a registry of families (synthetic, scenario, external).

The registry (:mod:`repro.workloads.registry`) is the front door:
families are looked up by name, targets by ``family:target``
references, and :func:`build_workload` turns a reference into a
ready-to-simulate :class:`~repro.engine.Workload`.  Registered
families: ``synthetic`` (the paper's Table V mixes), ``datacenter`` /
``phase`` / ``adversarial`` (scenario families,
:mod:`repro.workloads.families`), and ``external`` (imported traces,
:mod:`repro.workloads.external`).

.. deprecated::
   The flat, single-family names re-exported below (``PROFILES``,
   ``MIXES``, ``profile``, ``mix_profiles``, …) describe only the
   ``synthetic`` family and are kept as thin back-compat shims over
   the registry.  New code should resolve workloads through the
   registry API (``get_family``/``resolve_workload_ref``/
   ``build_workload``) so every family — not just the paper's mixes —
   is reachable.
"""

from .data import DataModel
from .generator import AppTraceGenerator
from .mixes import MIX_NAMES, MIXES, mix_profiles
from .profiles import APP_NAMES, PROFILES, AppProfile, make_comp_weights, profile
from .registry import (
    DEFAULT_FAMILY,
    SyntheticProfileFamily,
    TargetSpec,
    WorkloadFamily,
    WorkloadRefError,
    build_workload,
    family_names,
    get_family,
    normalize_workload_ref,
    parse_workload_ref,
    register_family,
    resolve_workload_ref,
    workload_ref_fingerprint,
    workload_refs,
)
from .synthetic import (
    homogeneous_mix,
    incompressible_profile,
    looping_profile,
    pointer_chase_profile,
    scanning_profile,
    streaming_profile,
    write_heavy_profile,
)
from .trace import CORE_ADDR_SHIFT, MaterializedTrace, TraceRecord, materialize
from .traceio import (
    TraceFormatError,
    file_sha256,
    load_trace,
    load_trace_csv,
    save_trace,
    save_trace_csv,
    validate_trace,
)

__all__ = [
    "APP_NAMES",
    "AppProfile",
    "AppTraceGenerator",
    "CORE_ADDR_SHIFT",
    "DEFAULT_FAMILY",
    "DataModel",
    "MIXES",
    "MIX_NAMES",
    "MaterializedTrace",
    "PROFILES",
    "SyntheticProfileFamily",
    "TargetSpec",
    "TraceFormatError",
    "TraceRecord",
    "WorkloadFamily",
    "WorkloadRefError",
    "build_workload",
    "family_names",
    "file_sha256",
    "get_family",
    "homogeneous_mix",
    "incompressible_profile",
    "load_trace",
    "load_trace_csv",
    "looping_profile",
    "make_comp_weights",
    "materialize",
    "mix_profiles",
    "normalize_workload_ref",
    "parse_workload_ref",
    "pointer_chase_profile",
    "profile",
    "register_family",
    "resolve_workload_ref",
    "save_trace",
    "save_trace_csv",
    "scanning_profile",
    "streaming_profile",
    "validate_trace",
    "workload_ref_fingerprint",
    "workload_refs",
    "write_heavy_profile",
]
