"""Synthetic SPEC-like workloads: profiles, mixes, traces, data model."""

from .data import DataModel
from .generator import AppTraceGenerator
from .mixes import MIX_NAMES, MIXES, mix_profiles
from .profiles import APP_NAMES, PROFILES, AppProfile, make_comp_weights, profile
from .synthetic import (
    homogeneous_mix,
    incompressible_profile,
    looping_profile,
    pointer_chase_profile,
    scanning_profile,
    streaming_profile,
    write_heavy_profile,
)
from .trace import CORE_ADDR_SHIFT, MaterializedTrace, TraceRecord, materialize
from .traceio import (
    TraceFormatError,
    file_sha256,
    load_trace,
    load_trace_csv,
    save_trace,
    save_trace_csv,
    validate_trace,
)

__all__ = [
    "APP_NAMES",
    "AppProfile",
    "AppTraceGenerator",
    "CORE_ADDR_SHIFT",
    "DataModel",
    "MIXES",
    "MIX_NAMES",
    "MaterializedTrace",
    "PROFILES",
    "TraceFormatError",
    "TraceRecord",
    "file_sha256",
    "validate_trace",
    "homogeneous_mix",
    "incompressible_profile",
    "load_trace",
    "load_trace_csv",
    "looping_profile",
    "make_comp_weights",
    "materialize",
    "mix_profiles",
    "pointer_chase_profile",
    "save_trace",
    "save_trace_csv",
    "profile",
    "scanning_profile",
    "streaming_profile",
    "write_heavy_profile",
]
