"""Scenario families beyond the paper's evaluation.

Three registered synthetic families stress mechanisms the Table V
mixes were never calibrated to exercise:

* ``datacenter`` — key-value/scan service mixes: point-lookup storms
  over large pools, write-heavy ingest with compressible log streams,
  and columnar scan analytics.  These are the workload shapes the
  ROADMAP's competitor policies (MAC, Mittal's SRAM-NVM management)
  are designed around.
* ``phase`` — phase-changing workloads: the Table V profiles rotate
  regions every ~150k accesses; these targets push phase churn to
  both extremes (slow drift, rapid flips, bursty half-steady mixes)
  so convergence-dependent policies keep paying insertion costs.
* ``adversarial`` — worst-case scenarios for the CP family: working
  sets sized just past the LLC (thrash), hot regions whose
  compressibility *flips* with every phase slot
  (:attr:`~repro.workloads.profiles.AppProfile.comp_flip` — CP set
  dueling must keep re-electing CP_th), and maximally disagreeing
  compressible/incompressible core pairs (duel stress).

All targets are 4-core (the Table IV system), expressed at paper
scale, and respond to :meth:`AppProfile.scaled` like the SPEC
profiles, so every campaign scale preset applies unchanged.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Tuple

from .profiles import AppProfile, make_comp_weights
from .registry import SyntheticProfileFamily, register_family
from .synthetic import _base

#: (description, per-core profile builders) per target, evaluated
#: lazily so import stays cheap.
_TargetTable = Dict[str, Tuple[str, Callable[[], List[AppProfile]]]]


class _TableFamily(SyntheticProfileFamily):
    """A profile family defined by a static target table."""

    _TARGETS: _TargetTable = {}

    def targets(self) -> Tuple[str, ...]:
        return tuple(self._TARGETS)

    def _profiles(self, target: str) -> List[AppProfile]:
        return self._TARGETS[target][1]()

    def _target_description(self, target: str) -> str:
        return self._TARGETS[target][0]


# ----------------------------------------------------------------------
# datacenter: key-value / scan service mixes

#: Small-value KV payloads: short strings and counters compress well,
#: but serialisation headers keep a fat low-ratio tail.
_KV_COMP = make_comp_weights(0.45, 0.35)
#: Append-only log records: highly repetitive, near-best-case BDI.
_LOG_COMP = make_comp_weights(0.80, 0.15)
#: Columnar analytics pages: dictionary/delta-encoded already, so the
#: cache sees mostly low-ratio and incompressible lines.
_COLUMN_COMP = make_comp_weights(0.20, 0.40)


def _kv_read_core(i: int) -> AppProfile:
    """Point lookups: sparse random pool + a small hot index."""
    return _base(
        f"dc_kv_read{i}",
        rnd=0.55,
        rw=0.25,
        loop=0.10,
        stream=0.10,
        rnd_blocks=(48 + 8 * i) * 1024,
        rw_blocks=2 * 1024,
        loop_blocks=2 * 1024,
        footprint=(192 + 16 * i) * 1024,
        rw_wf=0.2,
        gap=10.0,
        comp=_KV_COMP,
    )


def _kv_write_core(i: int) -> AppProfile:
    """Ingest: hot memtable updates + an append-only log stream."""
    return _base(
        f"dc_kv_write{i}",
        rw=0.45,
        stream=0.35,
        rnd=0.15,
        loop=0.05,
        rw_blocks=(4 + i) * 1024,
        rnd_blocks=24 * 1024,
        loop_blocks=1024,
        stream_wf=0.9,
        rw_wf=0.8,
        gap=9.0,
        comp=_LOG_COMP,
    )


def _scan_core(i: int) -> AppProfile:
    """Columnar analytics: wide cyclic sweeps over encoded pages."""
    return _base(
        f"dc_scan{i}",
        scan=0.75,
        stream=0.15,
        rw=0.10,
        scan_blocks=(28 + 4 * i) * 1024,
        rw_blocks=1024,
        footprint=(224 + 16 * i) * 1024,
        gap=8.0,
        comp=_COLUMN_COMP,
    )


class DatacenterFamily(_TableFamily):
    name = "datacenter"
    description = (
        "key-value/scan service mixes: lookup storms, write-heavy "
        "ingest, columnar analytics"
    )
    _TARGETS: _TargetTable = {
        "kv_read": (
            "4x point-lookup storm over large KV pools",
            lambda: [_kv_read_core(i) for i in range(4)],
        ),
        "kv_write": (
            "4x write-heavy ingest with compressible log streams",
            lambda: [_kv_write_core(i) for i in range(4)],
        ),
        "scan_analytics": (
            "4x columnar scan analytics over encoded pages",
            lambda: [_scan_core(i) for i in range(4)],
        ),
        "kv_scan_mix": (
            "2 KV lookup cores co-scheduled with 2 scan cores",
            lambda: [_kv_read_core(0), _kv_read_core(1),
                     _scan_core(0), _scan_core(1)],
        ),
    }


# ----------------------------------------------------------------------
# phase: phase-change intensity sweeps

def _phased(name: str, n_phases: int, phase_accesses: int,
            stream: float = 0.2) -> AppProfile:
    """A balanced loop/scan/rw core whose regions rotate per phase."""
    prof = _base(
        name,
        loop=0.35,
        scan=0.25,
        rw=0.20,
        stream=stream,
        rnd=1.0 - (0.35 + 0.25 + 0.20 + stream),
        loop_blocks=6 * 1024,
        scan_blocks=10 * 1024,
        rw_blocks=2 * 1024,
        rnd_blocks=24 * 1024,
        gap=14.0,
        n_phases=n_phases,
    )
    return replace(prof, phase_accesses=phase_accesses)


class PhaseFamily(_TableFamily):
    name = "phase"
    description = (
        "phase-changing workloads: region populations churn at "
        "controlled rates to stress policy re-convergence"
    )
    _TARGETS: _TargetTable = {
        "gradual": (
            "6 phases drifting slowly (100k accesses per phase)",
            lambda: [_phased(f"phase_gradual{i}", 6, 100_000)
                     for i in range(4)],
        ),
        "abrupt": (
            "8 phases flipping rapidly (25k accesses per phase)",
            lambda: [_phased(f"phase_abrupt{i}", 8, 25_000)
                     for i in range(4)],
        ),
        "burst": (
            "2 steady cores co-scheduled with 2 fast-phasing cores",
            lambda: [_phased("phase_steady0", 1, 150_000),
                     _phased("phase_steady1", 1, 150_000),
                     _phased("phase_burst0", 10, 20_000),
                     _phased("phase_burst1", 10, 20_000)],
        ),
    }


# ----------------------------------------------------------------------
# adversarial: CP set-dueling stress scenarios

#: Paper-scale LLC capacity in blocks (8192 sets x 16 ways); thrash
#: targets size their aggregate working set just past it.
_LLC_BLOCKS = 8192 * 16


def _thrash_core(i: int) -> AppProfile:
    """A cyclic sweep sized so four of them just overflow the LLC."""
    scan_blocks = _LLC_BLOCKS // 4 + (2 + i) * 1024
    return _base(
        f"adv_thrash{i}",
        scan=0.9,
        stream=0.1,
        scan_blocks=scan_blocks,
        footprint=2 * scan_blocks,
        gap=9.0,
    )


def _flip_core(i: int) -> AppProfile:
    """A hot set whose compressibility flips with every phase slot."""
    prof = _base(
        f"adv_flip{i}",
        loop=0.45,
        rw=0.25,
        stream=0.20,
        rnd=0.10,
        loop_blocks=6 * 1024,
        rw_blocks=3 * 1024,
        rnd_blocks=16 * 1024,
        gap=11.0,
        comp=make_comp_weights(0.85, 0.10),
        n_phases=4,
    )
    return replace(prof, phase_accesses=40_000, comp_flip=True)


def _duel_core(i: int, compressible: bool) -> AppProfile:
    comp = make_comp_weights(0.9, 0.08) if compressible else \
        make_comp_weights(0.0, 0.0)
    kind = "hcr" if compressible else "inc"
    return _base(
        f"adv_duel_{kind}{i}",
        loop=0.3,
        scan=0.3,
        rw=0.2,
        stream=0.2,
        loop_blocks=5 * 1024,
        scan_blocks=12 * 1024,
        rw_blocks=2 * 1024,
        gap=12.0,
        comp=comp,
    )


class AdversarialFamily(_TableFamily):
    name = "adversarial"
    description = (
        "thrashing and compressibility-flip scenarios that stress "
        "CP set dueling and insertion heuristics"
    )
    _TARGETS: _TargetTable = {
        "thrash": (
            "4 cyclic sweeps sized just past the LLC capacity",
            lambda: [_thrash_core(i) for i in range(4)],
        ),
        "comp_flip": (
            "hot sets alternating compressible/incompressible per phase",
            lambda: [_flip_core(i) for i in range(4)],
        ),
        "duel_stress": (
            "2 near-fully-compressible cores vs 2 incompressible cores",
            lambda: [_duel_core(0, True), _duel_core(1, True),
                     _duel_core(0, False), _duel_core(1, False)],
        ),
    }


register_family(DatacenterFamily())
register_family(PhaseFamily())
register_family(AdversarialFamily())
