"""Synthetic single-behaviour profiles for controlled experiments.

The Table V mixes blend several access behaviours; when a test or a
study needs to isolate one mechanism (e.g. "what does a pure stream do
to TAP?", "how fast does LHybrid capture a pure loop?"), these factory
functions produce profiles with exactly one dominant region.  All
sizes are expressed at paper scale and respond to
:meth:`~repro.workloads.profiles.AppProfile.scaled` like the SPEC
profiles do.
"""

from __future__ import annotations

from typing import List, Optional

from .profiles import AppProfile, SizeWeights, make_comp_weights

_DEFAULT_COMP: SizeWeights = make_comp_weights(0.5, 0.28)


def _base(
    name: str,
    *,
    loop: float = 0.0,
    scan: float = 0.0,
    stream: float = 0.0,
    rw: float = 0.0,
    rnd: float = 0.0,
    loop_blocks: int = 4 * 1024,
    scan_blocks: int = 12 * 1024,
    rw_blocks: int = 2 * 1024,
    rnd_blocks: int = 32 * 1024,
    footprint: int = 160 * 1024,
    stream_wf: float = 0.1,
    rw_wf: float = 0.5,
    gap: float = 14.0,
    comp: Optional[SizeWeights] = None,
    n_phases: int = 1,
) -> AppProfile:
    regions = n_phases * (loop_blocks + scan_blocks + rw_blocks) + rnd_blocks
    footprint = max(footprint, regions + 32 * 1024)
    return AppProfile(
        name=name,
        footprint_blocks=footprint,
        loop_weight=loop,
        loop_blocks=loop_blocks,
        scan_weight=scan,
        scan_blocks=scan_blocks,
        stream_weight=stream,
        rw_weight=rw,
        rw_blocks=rw_blocks,
        random_weight=rnd,
        random_blocks=rnd_blocks,
        stream_write_frac=stream_wf,
        rw_write_frac=rw_wf,
        random_write_frac=0.1,
        gap_mean=gap,
        comp_weights=comp if comp is not None else _DEFAULT_COMP,
        n_phases=n_phases,
    )


def streaming_profile(
    write_frac: float = 0.1, comp: Optional[SizeWeights] = None
) -> AppProfile:
    """Pure thrashing stream: no reuse at any level (TAP's target)."""
    return _base("synthetic_stream", stream=1.0, stream_wf=write_frac, comp=comp)


def looping_profile(
    loop_blocks: int = 4 * 1024,
    comp: Optional[SizeWeights] = None,
    stream: float = 0.0,
) -> AppProfile:
    """Tight loop: every block is a loop-block after one sweep.

    An optional ``stream`` share adds thrashing pressure — a *pure*
    cyclic loop either fits the SRAM part (no replacements, nothing to
    migrate) or thrashes it with zero hits (classic LRU pathology), so
    studies of loop-block *migration* need a little competing traffic.
    """
    return _base(
        "synthetic_loop",
        loop=1.0 - stream,
        stream=stream,
        loop_blocks=loop_blocks,
        comp=comp,
    )


def scanning_profile(
    scan_blocks: int = 48 * 1024, comp: Optional[SizeWeights] = None
) -> AppProfile:
    """Medium cyclic sweep: reuse distance beyond the SRAM part.

    The class BH retains but SRAM-first policies lose (Sec. II-D's
    performance-gap mechanism, isolated).
    """
    return _base(
        "synthetic_scan",
        scan=1.0,
        scan_blocks=scan_blocks,
        footprint=max(160 * 1024, 2 * scan_blocks),
        comp=comp,
    )


def write_heavy_profile(
    rw_blocks: int = 4 * 1024, comp: Optional[SizeWeights] = None
) -> AppProfile:
    """Read-modify-write hot set: dirty, write-reused traffic."""
    return _base("synthetic_rw", rw=1.0, rw_blocks=rw_blocks, rw_wf=0.7, comp=comp)


def pointer_chase_profile(
    rnd_blocks: int = 64 * 1024, comp: Optional[SizeWeights] = None
) -> AppProfile:
    """Sparse uniform pointer chasing over a large pool."""
    return _base("synthetic_chase", rnd=1.0, rnd_blocks=rnd_blocks, comp=comp)


def incompressible_profile(kind: str = "stream") -> AppProfile:
    """A fully incompressible variant of one of the behaviours."""
    comp = make_comp_weights(0.0, 0.0)
    factory = {
        "stream": streaming_profile,
        "loop": looping_profile,
        "scan": scanning_profile,
        "rw": write_heavy_profile,
        "chase": pointer_chase_profile,
    }[kind]
    return factory(comp=comp)


def homogeneous_mix(profile: AppProfile, n_cores: int = 4) -> List[AppProfile]:
    """The same behaviour on every core (for isolation studies)."""
    return [profile] * n_cores
