"""External trace ingestion: imported access traces as a workload family.

The importer converts ChampSim/gem5-style access traces — exported to
the interchange CSV below — into the repo's native ``.trc`` +
``.sizes`` mmap/sidecar formats, checksummed end to end, so imported
workloads inherit zero-copy loading, campaign units, memoization and
RunRecords exactly like the synthetic families.

Interchange format (one access per line)::

    core,gap,addr,is_write

``core`` is the issuing core (0-based, < the declared core count);
``gap`` the non-memory instructions since that core's previous access;
``addr`` a decimal or ``0x``-hex address — block-aligned by default
(``--addr-kind block``), or a raw byte address (``--addr-kind byte``,
shifted by log2(64) on import).  Blank lines, ``#`` comments and an
optional header line are ignored.  Converting a recorded trace to
this shape is a few lines of the recorder's own tooling; the
*validation* lives here.

Imported target layout (under the root named by the
``REPRO_EXTERNAL_WORKLOADS`` environment variable)::

    <root>/<name>/target.json   # checksummed fsio envelope (identity)
    <root>/<name>/core<k>.trc   # one validated binary trace per core
    <root>/<name>/core<k>.sizes # compressed-size sidecar per core

``target.json`` records the source digest, per-file SHA-256s and the
declared compressibility split; :class:`ExternalFamily` re-verifies
every file against it on build.  Malformed records raise
:class:`~repro.workloads.traceio.TraceFormatError` naming the line;
corrupt on-disk artefacts are quarantined through :mod:`repro.fsio`
and either fail the build (traces, manifest) or are deterministically
redrawn and counted (size sidecars) — an imported trace can be
*unusable*, never silently wrong.
"""

from __future__ import annotations

import io
import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..config import resolve_external_root
from ..fsio.durable import (
    BlobError,
    atomic_write_bytes,
    durable_replace,
    payload_bytes,
    read_bytes,
    unwrap_json,
    wrap_json,
)
from ..fsio.quarantine import quarantine_file
from ..manifest import library_info
from .cache import SidecarError, read_sizes_file, write_sizes_file
from .data import DataModel
from .profiles import AppProfile, make_comp_weights
from .registry import TargetSpec, WorkloadFamily, register_family
from .trace import CORE_ADDR_SHIFT, MaterializedTrace, TraceRecord
from .traceio import (
    MAX_BLOCK_OFFSET,
    TraceFormatError,
    file_sha256,
    load_trace_mmap,
    save_trace,
)

PathLike = Union[str, Path]

#: Envelope schema tag of ``target.json`` identity records.
TARGET_SCHEMA = "repro-workload-target/1"
TARGET_NAME = "target.json"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _parse_addr(text: str) -> int:
    text = text.strip()
    return int(text, 16) if text.lower().startswith("0x") else int(text)


def parse_interchange_csv(
    source: Union[PathLike, io.TextIOBase],
    cores: int,
    addr_kind: str = "block",
) -> List[List[TraceRecord]]:
    """Parse and validate the interchange CSV into per-core records.

    Every structural defect — wrong field count, unparsable numbers,
    a core outside the declared count, an address offset that does
    not fit the per-core address slice, a core with no records —
    raises :class:`TraceFormatError` naming the file and line.  The
    returned records carry the final simulator addresses (core id in
    bits :data:`CORE_ADDR_SHIFT` and up).
    """
    if cores < 1:
        raise ValueError("need at least one core")
    if addr_kind not in ("block", "byte"):
        raise ValueError(f"addr_kind must be 'block' or 'byte', not {addr_kind!r}")
    own = not hasattr(source, "read")
    fh = open(source) if own else source
    path = source if own else getattr(source, "name", "<stream>")
    per_core: List[List[TraceRecord]] = [[] for _ in range(cores)]
    seen_data = False
    try:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            # a "core,gap,..." header is legal on the first data-ish
            # line (comments/blanks may precede it), nowhere else
            if not seen_data and line.lower().startswith("core,"):
                continue
            seen_data = True
            parts = line.split(",")
            if len(parts) != 4:
                raise TraceFormatError(
                    path, f"line {line_no}: expected 4 fields, got {len(parts)}"
                )
            try:
                core = int(parts[0])
                gap = int(parts[1])
                addr = _parse_addr(parts[2])
            except ValueError:
                raise TraceFormatError(
                    path, f"line {line_no}: unparsable record {line!r}"
                ) from None
            is_write = parts[3].strip() not in ("0", "", "false", "False")
            if not 0 <= core < cores:
                raise TraceFormatError(
                    path,
                    f"line {line_no}: core {core} out of range "
                    f"(declared {cores} cores)",
                )
            if gap < 0:
                raise TraceFormatError(path, f"line {line_no}: negative gap")
            if addr < 0:
                raise TraceFormatError(path, f"line {line_no}: negative address")
            block = addr >> 6 if addr_kind == "byte" else addr
            if block >= MAX_BLOCK_OFFSET:
                raise TraceFormatError(
                    path,
                    f"line {line_no}: block address {block:#x} does not fit "
                    f"the {CORE_ADDR_SHIFT}-bit per-core address slice",
                )
            per_core[core].append(
                TraceRecord(gap, (core << CORE_ADDR_SHIFT) | block, is_write)
            )
    finally:
        if own:
            fh.close()
    for core, records in enumerate(per_core):
        if not records:
            raise TraceFormatError(
                path, f"core {core} has no records (declared {cores} cores)"
            )
    return per_core


def _surrogate_profile(
    target: str,
    core: int,
    footprint_blocks: int,
    gap_mean: float,
    write_fraction: float,
    hcr: float,
    lcr: float,
) -> AppProfile:
    """A stand-in profile carrying an imported core's *statistics*.

    Imported traces replay as recorded — the profile never generates
    records — but the :class:`DataModel` still needs per-core
    compressibility CDFs and the provenance layers need names,
    footprints and gaps.  All structured-region sizes are zero, so
    every imported address draws from the aggregate (cold) CDF at the
    declared HCR/LCR split.
    """
    return AppProfile(
        name=f"external:{target}:core{core}",
        footprint_blocks=max(1, footprint_blocks),
        loop_weight=0.0,
        loop_blocks=0,
        scan_weight=0.0,
        scan_blocks=0,
        stream_weight=1.0,
        rw_weight=0.0,
        rw_blocks=0,
        random_weight=0.0,
        random_blocks=0,
        stream_write_frac=write_fraction,
        rw_write_frac=0.0,
        random_write_frac=0.0,
        gap_mean=gap_mean,
        comp_weights=make_comp_weights(hcr, lcr),
        n_phases=1,
    )


def import_trace(
    source: PathLike,
    name: str,
    root: Optional[PathLike] = None,
    *,
    cores: int = 4,
    hcr: float = 0.5,
    lcr: float = 0.28,
    addr_kind: str = "block",
    seed: int = 0,
) -> Path:
    """Import an interchange CSV as external target ``name``.

    Writes ``core<k>.trc`` + ``core<k>.sizes`` and the checksummed
    ``target.json`` identity record under ``<root>/<name>``, all
    through atomic replaces so a crashed import can at worst leave
    temp files, never a half-valid target.  Returns the target
    directory.  ``hcr``/``lcr`` declare the aggregate compressibility
    split the data model assigns imported blocks (external recorders
    rarely capture payload bytes, so the split is declared, exactly
    like DESIGN.md's documented substitution for SPEC).
    """
    if not _NAME_RE.match(name or ""):
        raise ValueError(
            f"bad target name {name!r} (want letters/digits/._- only)"
        )
    root_path = resolve_external_root(root)
    if root_path is None:
        raise ValueError(
            "no external workload root: pass root= or set "
            "REPRO_EXTERNAL_WORKLOADS"
        )
    per_core = parse_interchange_csv(source, cores, addr_kind=addr_kind)
    traces = [MaterializedTrace(records) for records in per_core]
    profiles = [
        _surrogate_profile(
            name, core,
            footprint_blocks=trace.footprint(),
            gap_mean=sum(trace.gaps) / len(trace),
            write_fraction=trace.write_fraction(),
            hcr=hcr, lcr=lcr,
        )
        for core, trace in enumerate(traces)
    ]
    model = DataModel(profiles, seed=seed)

    target_dir = root_path / name
    target_dir.mkdir(parents=True, exist_ok=True)
    trace_shas: Dict[str, str] = {}
    sizes_shas: Dict[str, str] = {}
    for core, trace in enumerate(traces):
        trc_path = target_dir / f"core{core}.trc"
        tmp = target_dir / f".core{core}.trc.tmp.{os.getpid()}"
        save_trace(trace, tmp)
        durable_replace(tmp, trc_path)
        trace_shas[trc_path.name] = file_sha256(trc_path)
        sizes_path = target_dir / f"core{core}.sizes"
        write_sizes_file(sizes_path, model.sizes_for(set(trace.addrs)))
        sizes_shas[sizes_path.name] = file_sha256(sizes_path)

    identity = {
        "name": name,
        "family": ExternalFamily.name,
        "cores": cores,
        "seed": seed,
        "addr_kind": addr_kind,
        "comp": {"hcr": hcr, "lcr": lcr},
        "source": {
            "path": str(source),
            "sha256": file_sha256(source),
        },
        "records": [len(t) for t in traces],
        "footprint_blocks": [t.footprint() for t in traces],
        "gap_mean": [p.gap_mean for p in profiles],
        "write_fraction": [p.stream_write_frac for p in profiles],
        "traces": trace_shas,
        "sizes": sizes_shas,
        "library": library_info(),
    }
    atomic_write_bytes(
        target_dir / TARGET_NAME,
        payload_bytes(wrap_json(identity, TARGET_SCHEMA)),
    )
    return target_dir


def load_target_manifest(target_dir: Path) -> Dict[str, object]:
    """Read + verify a target's identity record.

    A manifest that is missing raises :class:`FileNotFoundError`; one
    that exists but fails the envelope checksum or basic shape checks
    is quarantined (evidence for ``repro doctor``) and raises
    :class:`TraceFormatError` — a corrupt identity record must never
    resolve to a buildable target.
    """
    path = Path(target_dir) / TARGET_NAME
    raw = read_bytes(path)
    try:
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise TraceFormatError(path, f"unparsable target record ({exc})")
        try:
            payload = unwrap_json(data, schema=TARGET_SCHEMA, path=path)
        except BlobError as exc:
            raise TraceFormatError(path, exc.reason) from None
        if payload is data:  # not an envelope at all
            raise TraceFormatError(path, "not a checksummed target record")
        if not isinstance(payload, dict) or not isinstance(
            payload.get("cores"), int
        ):
            raise TraceFormatError(path, "malformed target record")
        return payload
    except TraceFormatError as exc:
        quarantine_file(
            path, exc.reason, "external-target", root=Path(target_dir)
        )
        raise


class ExternalFamily(WorkloadFamily):
    """Imported traces under the external workload root."""

    name = "external"
    description = (
        "imported access traces (ChampSim/gem5-style interchange CSV "
        "-> .trc/.sizes; root: $REPRO_EXTERNAL_WORKLOADS)"
    )

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self._root = Path(root) if root is not None else None

    @property
    def root(self) -> Optional[Path]:
        return self._root if self._root is not None else resolve_external_root()

    # ------------------------------------------------------------------
    def targets(self) -> Tuple[str, ...]:
        root = self.root
        if root is None or not root.is_dir():
            return ()
        return tuple(
            sorted(
                entry.name
                for entry in root.iterdir()
                if (entry / TARGET_NAME).is_file()
            )
        )

    def _target_dir(self, target: str) -> Path:
        self.check_target(target)
        return self.root / target  # type: ignore[operator]  # root checked

    def target_spec(self, target: str) -> TargetSpec:
        manifest = load_target_manifest(self._target_dir(target))
        comp = manifest.get("comp", {})
        hcr = float(comp.get("hcr", 0.0))
        lcr = float(comp.get("lcr", 0.0))
        return TargetSpec(
            family=self.name,
            target=target,
            cores=int(manifest["cores"]),
            description=(
                f"imported from {manifest.get('source', {}).get('path', '?')}"
                f" ({sum(manifest.get('records', []))} records)"
            ),
            footprint_blocks=sum(manifest.get("footprint_blocks", [])),
            hcr_fraction=hcr,
            lcr_fraction=lcr,
            incompressible_fraction=max(0.0, 1.0 - hcr - lcr),
            scalable=False,
        )

    def build(self, target: str, scale, seed: int = 0):
        """Load an imported target, verifying every artefact.

        Fixed-dimension: ``scale`` and ``seed`` are accepted for
        interface parity but the traces replay as recorded and the
        size draws use the seed recorded at import (so every scale and
        seed observes the same imported bytes).  Trace files whose
        content hash diverges from the identity record are quarantined
        and fail the build; corrupt size sidecars are quarantined,
        redrawn deterministically, and counted in
        ``workload.sidecar_redraws``.
        """
        from ..engine import Workload

        target_dir = self._target_dir(target)
        manifest = load_target_manifest(target_dir)
        cores = int(manifest["cores"])
        comp = manifest.get("comp", {})
        import_seed = int(manifest.get("seed", 0))

        traces: List[MaterializedTrace] = []
        profiles: List[AppProfile] = []
        redraws = 0
        sizes_per_core: List[Optional[Dict[int, Tuple[int, int]]]] = []
        for core in range(cores):
            trc_path = target_dir / f"core{core}.trc"
            recorded = manifest.get("traces", {}).get(trc_path.name)
            if not trc_path.is_file():
                raise TraceFormatError(trc_path, "missing trace file")
            if recorded is not None and file_sha256(trc_path) != recorded:
                quarantine_file(
                    trc_path, "trace checksum diverged from target.json",
                    "external-trace", root=target_dir,
                )
                raise TraceFormatError(
                    trc_path, "checksum mismatch against target.json"
                )
            trace = load_trace_mmap(trc_path)  # validates header/size
            traces.append(trace)
            profiles.append(
                _surrogate_profile(
                    target, core,
                    footprint_blocks=int(
                        manifest.get("footprint_blocks", [0] * cores)[core]
                    ),
                    gap_mean=float(
                        manifest.get("gap_mean", [0.0] * cores)[core]
                    ),
                    write_fraction=float(
                        manifest.get("write_fraction", [0.0] * cores)[core]
                    ),
                    hcr=float(comp.get("hcr", 0.0)),
                    lcr=float(comp.get("lcr", 0.0)),
                )
            )
            sizes_path = target_dir / f"core{core}.sizes"
            sizes: Optional[Dict[int, Tuple[int, int]]]
            try:
                sizes = read_sizes_file(sizes_path)
            except FileNotFoundError:
                sizes = None
            except SidecarError as exc:
                quarantine_file(
                    sizes_path, exc.reason, "sizes-sidecar", root=target_dir
                )
                redraws += 1
                sizes = None
            sizes_per_core.append(sizes)

        workload = Workload.from_traces(
            profiles, traces,
            seed=import_seed,
            sizes_per_core=sizes_per_core,
            family=self.name,
            target=target,
        )
        workload.sidecar_redraws = redraws
        return workload


register_family(ExternalFamily())
