"""Block data model: per-address payloads with profile compressibility.

Every block address is owned by exactly one application (the address
slice encodes the core).  The model assigns each address a compressed
size drawn — deterministically, keyed by the address — from the app's
Fig. 2-calibrated size distribution, and can materialise real 64-byte
payloads that the BDI compressor verifiably compresses to that size.

Compressibility is *region-aware*: structured data (the loop/scan/rw
regions — numeric arrays, stencil grids, small-integer tables)
compresses noticeably better than the streaming/pointer-pool remainder
of the footprint, as in real workloads.  The split is solved so that
the app's *traffic-weighted* aggregate still matches its Fig. 2
HCR/LCR/incompressible fractions.

The hot path is :meth:`size_fn`, which the LLC calls on every fill;
results are memoised per address, and a block keeps its size class for
its lifetime (data regions retain their compressibility — the paper
measures per-application class fractions, not per-write churn).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

from ..compression.encodings import BLOCK_SIZE, ecb_size
from ..compression.patterns import PatternLibrary
from .profiles import AppProfile
from .trace import CORE_ADDR_SHIFT

#: How much more compressible structured (hot-region) data is, before
#: re-normalising so the app aggregate stays on its Fig. 2 split.
HOT_COMPRESSIBILITY_BOOST = 1.6

_ADDR_MASK = (1 << CORE_ADDR_SHIFT) - 1

Cdf = Tuple[List[float], List[int]]


def _split_compressibility(profile: AppProfile) -> Tuple[float, float]:
    """Compressible fractions (hot, cold) preserving the aggregate."""
    c = 1.0 - profile.incompressible_fraction
    w_hot = profile.hot_traffic_fraction
    w_cold = 1.0 - w_hot
    if c <= 0.0:
        return 0.0, 0.0
    if w_cold <= 1e-9:
        return c, c
    c_hot = min(1.0, c * HOT_COMPRESSIBILITY_BOOST)
    c_cold = (c - w_hot * c_hot) / w_cold
    if c_cold < 0.0:
        c_cold = 0.0
        c_hot = min(1.0, c / max(w_hot, 1e-9))
    return c_hot, c_cold


def _build_cdf(profile: AppProfile, compressible_fraction: float) -> Cdf:
    """CDF over compressed sizes with a rescaled incompressible share."""
    comp = [(s, w) for s, w in profile.comp_weights if s < BLOCK_SIZE]
    comp_total = sum(w for _s, w in comp)
    cum: List[float] = []
    sizes: List[int] = []
    acc = 0.0
    if comp and comp_total > 0 and compressible_fraction > 0:
        for size, weight in comp:
            acc += compressible_fraction * weight / comp_total
            cum.append(min(acc, 1.0))
            sizes.append(size)
    if acc < 1.0 - 1e-9 or not sizes:
        cum.append(1.0)
        sizes.append(BLOCK_SIZE)
    cum[-1] = 1.0
    return cum, sizes


class DataModel:
    """Compressibility oracle for a multi-programmed workload."""

    def __init__(
        self, profiles: Sequence[AppProfile], seed: int = 0, pool_size: int = 32
    ) -> None:
        if not profiles:
            raise ValueError("need at least one application profile")
        self.profiles = list(profiles)
        self.seed = seed
        self._sizes: Dict[int, Tuple[int, int]] = {}
        self._library = PatternLibrary(seed=seed ^ 0x5EED, pool_size=pool_size)
        self._hot_cdf: List[Cdf] = []
        self._cold_cdf: List[Cdf] = []
        self._hot_bound: List[int] = []
        self._flip_slot: List[int] = []
        for prof in self.profiles:
            c_hot, c_cold = _split_compressibility(prof)
            self._hot_cdf.append(_build_cdf(prof, c_hot))
            self._cold_cdf.append(_build_cdf(prof, c_cold))
            self._hot_bound.append(prof.hot_region_blocks)
            # comp_flip: odd phase slots of the hot region are forced
            # incompressible, so phase rotation flips the hot set's
            # compressibility (adversarial CP set-dueling stress).
            self._flip_slot.append(
                prof.hot_region_blocks // prof.n_phases
                if prof.comp_flip else 0
            )

    # ------------------------------------------------------------------
    def core_of(self, addr: int) -> int:
        return addr >> CORE_ADDR_SHIFT

    def _draw_size(self, addr: int) -> int:
        core = addr >> CORE_ADDR_SHIFT
        if core >= len(self.profiles):
            raise ValueError(f"address {addr:#x} belongs to unknown core {core}")
        offset = addr & _ADDR_MASK
        if offset < self._hot_bound[core]:
            slot = self._flip_slot[core]
            if slot and (offset // slot) & 1:
                return BLOCK_SIZE
            cum, sizes = self._hot_cdf[core]
        else:
            cum, sizes = self._cold_cdf[core]
        u = random.Random((addr << 8) ^ self.seed).random()
        return sizes[bisect_left(cum, u)]

    def size_fn(self, addr: int) -> Tuple[int, int]:
        """(compressed size, ECB size) of the block at ``addr``."""
        entry = self._sizes.get(addr)
        if entry is None:
            csize = self._draw_size(addr)
            entry = (csize, ecb_size(csize))
            self._sizes[addr] = entry
        return entry

    def compressed_size(self, addr: int) -> int:
        return self.size_fn(addr)[0]

    def prefetch_sizes(self, addrs) -> None:
        """Warm the size memo for ``addrs`` (any iterable of block
        addresses).

        Drawing a size seeds a fresh :class:`random.Random` per new
        address — cheap once, but when it happens lazily the whole cost
        lands inside the first *compressed-policy* simulation replaying
        a trace.  Warming at workload-build time moves it to where it
        belongs; the draws themselves are unchanged (pure function of
        address and seed).
        """
        sizes = self._sizes
        draw = self._draw_size
        for addr in addrs:
            # Native int: mmap-backed traces iterate as NumPy scalars,
            # which the PRNG seed below cannot accept (and which would
            # otherwise leak in as memo keys).
            addr = int(addr)
            if addr not in sizes:
                csize = draw(addr)
                sizes[addr] = (csize, ecb_size(csize))

    def preload_sizes(self, entries: Dict[int, Tuple[int, int]]) -> None:
        """Adopt pre-computed ``addr -> (csize, ecb)`` entries.

        This is how a compressed-size *sidecar* (persisted by
        :mod:`repro.workloads.cache` next to the cached trace) skips
        the per-address PRNG draw entirely.  Entries must have been
        produced by this model's own draw for the same seed/profiles —
        the sidecar cache keys by exactly those inputs — so preloading
        is observationally identical to drawing.
        """
        self._sizes.update(entries)

    def sizes_for(self, addrs) -> Dict[int, Tuple[int, int]]:
        """``addr -> (csize, ecb)`` for ``addrs`` (drawing any missing).

        The export side of the sidecar cache: after a trace's sizes
        are prefetched, this snapshots exactly the entries a later
        :meth:`preload_sizes` needs to reproduce them.
        """
        sizes = self._sizes
        draw = self._draw_size
        out: Dict[int, Tuple[int, int]] = {}
        for addr in addrs:
            addr = int(addr)
            entry = sizes.get(addr)
            if entry is None:
                csize = draw(addr)
                entry = (csize, ecb_size(csize))
                sizes[addr] = entry
            out[addr] = entry
        return out

    # ------------------------------------------------------------------
    def block_bytes(self, addr: int) -> bytes:
        """A concrete 64-byte payload matching the address's size class."""
        csize, _ecb = self.size_fn(addr)
        return self._library.block_for_size(csize, choice=addr)

    def size_fn_for(self, compressor) -> "SizeFnForCompressor":
        """A size oracle that runs a *real* compressor on the payloads.

        The policies are orthogonal to the compression mechanism
        (Sec. II-B); this lets an experiment swap modified BDI for any
        :class:`~repro.compression.base.Compressor` (e.g. FPC) while
        replaying identical reference streams and payloads.
        """
        return SizeFnForCompressor(self, compressor)

    def known_blocks(self) -> int:
        return len(self._sizes)


class SizeFnForCompressor:
    """Memoised ``addr -> (csize, ecb)`` through an arbitrary compressor."""

    def __init__(self, model: DataModel, compressor) -> None:
        self.model = model
        self.compressor = compressor
        self._cache: Dict[int, Tuple[int, int]] = {}

    def __call__(self, addr: int) -> Tuple[int, int]:
        entry = self._cache.get(addr)
        if entry is None:
            block = self.model.block_bytes(addr)
            result = self.compressor.compress(block)
            entry = (result.size, result.ecb_size)
            self._cache[addr] = entry
        return entry
