"""Workload and trace caching: stop regenerating identical inputs.

Synthetic trace generation is pure — the records depend only on the
profile's fields, the owning core, the seed and the record count — so
the same trace is rebuilt from scratch by every simulation, sweep
point and campaign worker that asks for it.  Two caches remove that
waste without ever changing a byte of what the engine replays:

* an **in-process** :class:`WorkloadCache` — a small LRU keyed by the
  exact :class:`~repro.workloads.profiles.AppProfile` tuples (frozen
  dataclasses, so the key *is* the generator input), seed and record
  count.  :meth:`repro.experiments.common.ExperimentScale.workload`
  routes through a shared instance, so a sweep that runs seven
  policies over one mix builds the workload once, not seven times;

* an **on-disk** materialized-trace cache — binary ``.trc`` files
  (the :mod:`repro.workloads.traceio` format) under the directory
  named by the ``REPRO_TRACE_CACHE`` environment variable, keyed by a
  SHA-256 over every generator input plus :data:`GENERATOR_VERSION`.
  ``repro campaign`` points this at ``<campaign_dir>/trace_cache`` by
  default so its worker *processes* share traces across tasks.

Safety properties: cache files are written atomically (tmp +
``os.replace``), so concurrent workers race harmlessly — last writer
wins with identical bytes; a corrupt or truncated entry fails
:func:`~repro.workloads.traceio.load_trace` validation and is silently
regenerated (a cache must never be able to poison results); and
:data:`GENERATOR_VERSION` must be bumped whenever the generator's
record stream changes, which orphans old entries instead of serving
stale traces.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Optional, Sequence, Tuple, TypeVar

from .generator import AppTraceGenerator
from .profiles import AppProfile
from .trace import MaterializedTrace, materialize
from .traceio import TraceFormatError, load_trace, save_trace

#: Version of the synthetic generator's *output stream*.  Bump this
#: whenever :mod:`repro.workloads.generator` changes the records it
#: emits for a given (profile, core, seed) — old disk-cache entries
#: then stop matching any key instead of being replayed stale.
GENERATOR_VERSION = 1

#: Environment variable naming the on-disk trace cache directory.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"


def trace_cache_key(
    profile: AppProfile, core: int, seed: int, n_records: int
) -> str:
    """Hex SHA-256 over every input that shapes a materialized trace."""
    blob = json.dumps(
        {
            "generator_version": GENERATOR_VERSION,
            "profile": dataclasses.asdict(profile),
            "core": core,
            "seed": seed,
            "n_records": n_records,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def trace_cache_dir() -> Optional[Path]:
    """The on-disk cache directory, or None if caching is disabled."""
    value = os.environ.get(TRACE_CACHE_ENV, "").strip()
    return Path(value) if value else None


def load_or_materialize(
    profile: AppProfile, core: int, seed: int, n_records: int
) -> MaterializedTrace:
    """Return the trace for one core, via the disk cache when enabled.

    With ``REPRO_TRACE_CACHE`` unset this is exactly
    ``materialize(AppTraceGenerator(...), n_records)``; with it set,
    a hit deserialises the identical columns from disk and a miss
    generates then stores them atomically.
    """
    directory = trace_cache_dir()
    if directory is None:
        return materialize(AppTraceGenerator(profile, core, seed=seed), n_records)

    path = directory / f"{trace_cache_key(profile, core, seed, n_records)}.trc"
    if path.exists():
        try:
            return load_trace(path)
        except (TraceFormatError, OSError):
            pass  # torn/corrupt entry: fall through and regenerate

    trace = materialize(AppTraceGenerator(profile, core, seed=seed), n_records)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f".{path.name}.tmp.{os.getpid()}"
        save_trace(trace, tmp)
        os.replace(tmp, path)
    except OSError:
        pass  # an unwritable cache slows things down, never fails them
    return trace


WorkloadKey = Tuple[Tuple[AppProfile, ...], int, int]
W = TypeVar("W")


class WorkloadCache:
    """Small in-process LRU of built workloads.

    Keys are ``(profiles, seed, trace_records_per_core)`` — profiles
    are frozen dataclasses, so equal keys mean byte-identical traces.
    Sharing a built workload across runs is safe because simulations
    never mutate it: the only state that grows is the data model's
    size memo, whose entries are a pure function of (address, seed)
    and are fully prefetched at construction anyway.

    The cache is deliberately generic over the built value (a
    ``builder`` callable supplies it on miss) so this module does not
    import :class:`repro.engine.Workload` and create an import cycle.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[WorkloadKey, object]" = OrderedDict()

    def get(
        self,
        profiles: Sequence[AppProfile],
        seed: int,
        trace_records_per_core: int,
        builder: Callable[[], W],
    ) -> W:
        """Return the cached workload for the key, building on miss."""
        key: WorkloadKey = (tuple(profiles), seed, trace_records_per_core)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry  # type: ignore[return-value]
        self.misses += 1
        built = builder()
        self._entries[key] = built
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return built

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide workload cache used by ``ExperimentScale.workload``.
SHARED_WORKLOAD_CACHE = WorkloadCache()
