"""Workload and trace caching: stop regenerating identical inputs.

Synthetic trace generation is pure — the records depend only on the
profile's fields, the owning core, the seed and the record count — so
the same trace is rebuilt from scratch by every simulation, sweep
point and campaign worker that asks for it.  Two caches remove that
waste without ever changing a byte of what the engine replays:

* an **in-process** :class:`WorkloadCache` — a small LRU keyed by the
  exact :class:`~repro.workloads.profiles.AppProfile` tuples (frozen
  dataclasses, so the key *is* the generator input), seed and record
  count.  :meth:`repro.experiments.common.ExperimentScale.workload`
  routes through a shared instance, so a sweep that runs seven
  policies over one mix builds the workload once, not seven times;

* an **on-disk** materialized-trace cache — binary ``.trc`` files
  (the :mod:`repro.workloads.traceio` format) under the directory
  named by the ``REPRO_TRACE_CACHE`` environment variable, keyed by a
  SHA-256 over every generator input plus :data:`GENERATOR_VERSION`.
  ``repro campaign`` points this at ``<campaign_dir>/trace_cache`` by
  default so its worker *processes* share traces across tasks.  Cache
  hits load through :func:`~repro.workloads.traceio.load_trace_mmap`,
  so every worker mapping the same file shares one read-only copy of
  the records via the OS page cache.

Next to each cached trace lives a **compressed-size sidecar**
(``<key>.sizes``): the per-address ``(compressed size, ECB size)``
table the :class:`~repro.workloads.data.DataModel` would otherwise
re-draw — one seeded PRNG per address, repeated by every policy cell
of a campaign matrix replaying the same mix.  The sidecar is keyed by
the *same* content hash as the trace (every draw input is a hash
input) plus :data:`SIZES_VERSION`, and preloading it is
observationally identical to drawing.

Safety properties: cache files are committed through
:mod:`repro.fsio` (tmp + fsync + ``os.replace`` + dir fsync), so
concurrent workers race harmlessly — last writer wins with identical
bytes — and a crash leaves the previous entry intact; a corrupt or
truncated trace entry fails validation and is silently regenerated (a
cache must never be able to poison results); a corrupt *sidecar* is
quarantined and raises :class:`SidecarError` so the owning workload
can count the redraw (``workload.sidecar_redraws``) instead of hiding
it; and :data:`GENERATOR_VERSION` / :data:`SIZES_VERSION` must be
bumped whenever the generator's record stream or the data model's
draw changes, which orphans old entries instead of serving stale
data.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import struct
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Tuple, TypeVar

from ..fsio.durable import (
    BlobError,
    atomic_write_bytes,
    durable_replace,
    is_binary_blob,
    read_bytes,
    unwrap_bytes,
    wrap_bytes,
)
from ..fsio.quarantine import quarantine_file
from .generator import AppTraceGenerator
from .profiles import AppProfile
from .trace import MaterializedTrace, materialize
from .traceio import load_trace_mmap, save_trace

#: Version of the synthetic generator's *output stream*.  Bump this
#: whenever :mod:`repro.workloads.generator` changes the records it
#: emits for a given (profile, core, seed) — old disk-cache entries
#: then stop matching any key instead of being replayed stale.
GENERATOR_VERSION = 1

#: Environment variable naming the on-disk trace cache directory.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"


#: The workload family whose cache keys predate family scoping.  Its
#: keys deliberately omit the family token so every pre-registry
#: on-disk trace/sidecar entry keeps matching.
DEFAULT_KEY_FAMILY = "synthetic"


def trace_cache_key(
    profile: AppProfile,
    core: int,
    seed: int,
    n_records: int,
    family: str = DEFAULT_KEY_FAMILY,
) -> str:
    """Hex SHA-256 over every input that shapes a materialized trace.

    ``family`` scopes keys per workload family so entries can never
    cross families even if two families hand out equal profiles; the
    default (synthetic) family is keyed exactly as before the registry
    existed, preserving every already-materialized cache entry.
    """
    inputs: Dict[str, object] = {
        "generator_version": GENERATOR_VERSION,
        "profile": dataclasses.asdict(profile),
        "core": core,
        "seed": seed,
        "n_records": n_records,
    }
    if family != DEFAULT_KEY_FAMILY:
        inputs["family"] = family
    blob = json.dumps(inputs, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def trace_cache_dir() -> Optional[Path]:
    """The on-disk cache directory, or None if caching is disabled."""
    value = os.environ.get(TRACE_CACHE_ENV, "").strip()
    return Path(value) if value else None


def load_or_materialize(
    profile: AppProfile,
    core: int,
    seed: int,
    n_records: int,
    family: str = DEFAULT_KEY_FAMILY,
) -> MaterializedTrace:
    """Return the trace for one core, via the disk cache when enabled.

    With ``REPRO_TRACE_CACHE`` unset this is exactly
    ``materialize(AppTraceGenerator(...), n_records)``; with it set,
    a hit deserialises the identical columns from disk and a miss
    generates then stores them atomically.
    """
    directory = trace_cache_dir()
    if directory is None:
        return materialize(AppTraceGenerator(profile, core, seed=seed), n_records)

    key = trace_cache_key(profile, core, seed, n_records, family=family)
    path = directory / f"{key}.trc"
    if path.exists():
        try:
            return load_trace_mmap(path)
        except (ValueError, OSError):
            # torn/corrupt entry (TraceFormatError is a ValueError):
            # fall through and regenerate
            pass

    trace = materialize(AppTraceGenerator(profile, core, seed=seed), n_records)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f".{path.name}.tmp.{os.getpid()}"
        save_trace(trace, tmp)
        durable_replace(tmp, path)
    except OSError:
        pass  # an unwritable cache slows things down, never fails them
    return trace


# ----------------------------------------------------------------------
# compressed-size sidecars

#: Version of the data model's size *draw*.  Bump whenever
#: :mod:`repro.workloads.data` changes what ``(csize, ecb)`` a given
#: (profile, seed, address) maps to — stale sidecars then stop
#: validating instead of silently poisoning statistics.
SIZES_VERSION = 1

_SIZES_MAGIC = b"REPROSZC"
_SIZES_HEADER = struct.Struct("<8sII")  # magic, version, entry count
_SIZES_RECORD = struct.Struct("<QHH")   # block addr, csize, ecb size

#: Envelope schema tag of ``.sizes`` sidecars.  The legacy REPROSZC
#: layout is kept verbatim as the envelope payload, so pre-envelope
#: sidecars still load (they just lack the checksum protection).
SIDECAR_SCHEMA = "repro-sizes/1"


class SidecarError(ValueError):
    """A sidecar exists but is corrupt (already quarantined).

    Distinct from the ``None`` a *missing or disabled* sidecar
    returns: the caller redraws sizes either way, but corruption is
    counted (``workload.sidecar_redraws``) and the evidence kept.
    """

    def __init__(self, path, reason: str):
        super().__init__(f"{path}: {reason}")
        self.path = str(path)
        self.reason = reason


def sizes_sidecar_path(
    directory: Path,
    profile: AppProfile,
    core: int,
    seed: int,
    n_records: int,
    family: str = DEFAULT_KEY_FAMILY,
) -> Path:
    """Sidecar path: same content-hash key as the trace, ``.sizes``."""
    key = trace_cache_key(profile, core, seed, n_records, family=family)
    return directory / f"{key}.sizes"


def write_sizes_file(
    path: Path, entries: Dict[int, Tuple[int, int]]
) -> str:
    """Serialise an ``addr -> (csize, ecb)`` table to ``path``.

    The checksummed envelope + REPROSZC layout used by cache sidecars,
    exposed for callers that place size files themselves (the external
    trace importer).  Entries are written sorted by address so
    identical tables serialise to identical bytes; returns the hex
    SHA-256 of the written file.
    """
    pack = _SIZES_RECORD.pack
    inner = _SIZES_HEADER.pack(
        _SIZES_MAGIC, SIZES_VERSION, len(entries)
    ) + b"".join(
        pack(addr, csize, ecb)
        for addr, (csize, ecb) in sorted(entries.items())
    )
    return atomic_write_bytes(path, wrap_bytes(inner, SIDECAR_SCHEMA))


def read_sizes_file(path: Path) -> Dict[int, Tuple[int, int]]:
    """Parse a size table written by :func:`write_sizes_file`.

    Raises :class:`FileNotFoundError` when missing and
    :class:`SidecarError` on any validation failure — quarantining is
    the *caller's* policy (cache sidecars quarantine into the cache
    root, external targets into the target directory).
    """
    blob = read_bytes(path)
    return _parse_sidecar(path, blob)


def save_sizes_sidecar(
    profile: AppProfile,
    core: int,
    seed: int,
    n_records: int,
    entries: Dict[int, Tuple[int, int]],
    family: str = DEFAULT_KEY_FAMILY,
) -> None:
    """Persist an ``addr -> (csize, ecb)`` table next to its trace.

    No-op when the disk cache is disabled or unwritable — sidecars are
    an accelerator, never a requirement.
    """
    directory = trace_cache_dir()
    if directory is None:
        return
    path = sizes_sidecar_path(
        directory, profile, core, seed, n_records, family=family
    )
    try:
        directory.mkdir(parents=True, exist_ok=True)
        write_sizes_file(path, entries)
    except OSError:
        pass


def load_sizes_sidecar(
    profile: AppProfile,
    core: int,
    seed: int,
    n_records: int,
    family: str = DEFAULT_KEY_FAMILY,
) -> Optional[Dict[int, Tuple[int, int]]]:
    """The persisted size table for a trace, ``None``, or an error.

    Returns ``None`` when the disk cache is disabled or the sidecar is
    simply missing.  A sidecar that *exists* but fails validation —
    envelope checksum, magic/version, or a declared entry count
    disagreeing with the bytes present — is moved to the cache's
    ``quarantine/`` and :class:`SidecarError` is raised; the caller
    falls back to drawing sizes, re-persists, and counts the redraw.
    """
    directory = trace_cache_dir()
    if directory is None:
        return None
    path = sizes_sidecar_path(
        directory, profile, core, seed, n_records, family=family
    )
    if not path.exists():
        return None
    try:
        blob = read_bytes(path)
    except FileNotFoundError:
        return None  # raced with a concurrent quarantine/cleanup
    except OSError as exc:
        raise SidecarError(path, f"unreadable ({exc})") from None
    try:
        return _parse_sidecar(path, blob)
    except SidecarError as exc:
        quarantine_file(path, exc.reason, "sizes-sidecar", root=directory)
        raise


def _parse_sidecar(
    path: Path, blob: bytes
) -> Dict[int, Tuple[int, int]]:
    if is_binary_blob(blob):
        try:
            _, blob = unwrap_bytes(blob, schema=SIDECAR_SCHEMA, path=path)
        except BlobError as exc:
            raise SidecarError(path, exc.reason) from None
    if len(blob) < _SIZES_HEADER.size:
        raise SidecarError(path, "truncated header")
    magic, version, count = _SIZES_HEADER.unpack_from(blob)
    if magic != _SIZES_MAGIC:
        raise SidecarError(path, "bad magic")
    if version != SIZES_VERSION:
        raise SidecarError(path, f"unsupported sizes version {version}")
    if len(blob) - _SIZES_HEADER.size != count * _SIZES_RECORD.size:
        raise SidecarError(
            path,
            f"entry count mismatch: header says {count}, "
            f"{len(blob) - _SIZES_HEADER.size} payload bytes",
        )
    return {
        addr: (csize, ecb)
        for addr, csize, ecb in _SIZES_RECORD.iter_unpack(
            blob[_SIZES_HEADER.size:]
        )
    }


WorkloadKey = Tuple[str, Tuple[AppProfile, ...], int, int]
W = TypeVar("W")


class WorkloadCache:
    """Small in-process LRU of built workloads.

    Keys are ``(token, profiles, seed, trace_records_per_core)`` —
    profiles are frozen dataclasses, so equal keys mean byte-identical
    traces, and ``token`` (the workload family name) keeps families
    from sharing entries even when their profiles collide.  Sharing a
    built workload across runs is safe because simulations never
    mutate it: the only state that grows is the data model's size
    memo, whose entries are a pure function of (address, seed) and are
    fully prefetched at construction anyway.

    The cache is deliberately generic over the built value (a
    ``builder`` callable supplies it on miss) so this module does not
    import :class:`repro.engine.Workload` and create an import cycle.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[WorkloadKey, object]" = OrderedDict()

    def get(
        self,
        profiles: Sequence[AppProfile],
        seed: int,
        trace_records_per_core: int,
        builder: Callable[[], W],
        token: str = DEFAULT_KEY_FAMILY,
    ) -> W:
        """Return the cached workload for the key, building on miss."""
        key: WorkloadKey = (token, tuple(profiles), seed, trace_records_per_core)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry  # type: ignore[return-value]
        self.misses += 1
        built = builder()
        self._entries[key] = built
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return built

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide workload cache used by ``ExperimentScale.workload``.
SHARED_WORKLOAD_CACHE = WorkloadCache()
