"""The ten multi-programmed workloads of Table V.

Each mix runs four applications, one per core, randomly drawn by the
authors from the memory-intensive subset of SPEC CPU 2006 and 2017.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .profiles import AppProfile, profile

MIXES: Dict[str, Tuple[str, str, str, str]] = {
    "mix1": ("zeusmp06", "gobmk06", "dealII06", "bzip206"),
    "mix2": ("hmmer06", "bzip206", "wrf06", "roms17"),
    "mix3": ("zeusmp06", "cactuBSSN17", "hmmer06", "soplex06"),
    "mix4": ("omnetpp06", "astar06", "milc06", "libquantum06"),
    "mix5": ("xalancbmk06", "leslie3d06", "bwaves17", "mcf17"),
    "mix6": ("lbm17", "xz17", "GemsFDTD06", "wrf06"),
    "mix7": ("cactuBSSN17", "dealII06", "libquantum06", "xalancbmk06"),
    "mix8": ("gobmk06", "milc06", "mcf17", "lbm17"),
    "mix9": ("xz17", "astar06", "bwaves17", "soplex06"),
    "mix10": ("GemsFDTD06", "omnetpp06", "roms17", "leslie3d06"),
}

MIX_NAMES: Tuple[str, ...] = tuple(MIXES)


def mix_profiles(mix_name: str) -> List[AppProfile]:
    """The four per-core application profiles of a mix."""
    try:
        apps = MIXES[mix_name]
    except KeyError:
        raise KeyError(
            f"unknown mix {mix_name!r}; known: {list(MIXES)}"
        ) from None
    return [profile(name) for name in apps]
