"""Workload family registry: every workload behind one pluggable seam.

Historically ``repro.workloads`` *was* the calibrated synthetic
generator — one implicit family, hard-wired into every layer that
needed a workload.  This module makes the family explicit: a
:class:`WorkloadFamily` names a set of *targets* (mixes, scenarios,
imported trace sets), describes each one as a :class:`TargetSpec`, and
builds a ready-to-simulate :class:`~repro.engine.Workload` on demand.
Everything downstream — campaign units, memo keys, snapshots, the
analytical estimator, ``repro export`` — works per family without
knowing any family's internals.

Workload references
-------------------

A workload is named by a ``family:target`` reference string.  For
backwards compatibility a bare name (no colon) refers to the
``synthetic`` family, so every pre-registry mix name (``"mix1"``,
``"mix4"``, …) keeps working verbatim — in CLI flags, campaign units,
and memo cache keys (:func:`workload_ref_fingerprint` deliberately
returns ``None`` for synthetic targets so the pre-registry result-
cache key space stays valid).

Registered families:

* ``synthetic`` — the paper's Table V mixes (PROFILES/MIXES), built
  byte-identically to the pre-registry path; the committed golden
  digests gate this.
* ``datacenter`` / ``phase`` / ``adversarial`` — new synthetic
  scenario families (:mod:`repro.workloads.families`).
* ``external`` — imported access traces
  (:mod:`repro.workloads.external`).

Adding a family is subclassing :class:`WorkloadFamily` (or
:class:`SyntheticProfileFamily` for profile-backed ones) and calling
:func:`register_family`; campaigns, memoization, sharded dispatch and
exploration inherit it with no further wiring.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..manifest import canonical_json
from .mixes import MIX_NAMES, mix_profiles
from .profiles import AppProfile

if TYPE_CHECKING:  # avoid the engine import cycle at module load
    from ..engine import Workload
    from ..experiments.common import ExperimentScale


class WorkloadRefError(KeyError):
    """A workload reference names no registered family or target.

    A :class:`KeyError` subclass so pre-registry callers that caught
    ``KeyError`` from ``mix_profiles`` keep working; carries the
    offending ``ref`` and the valid ``choices`` so the CLI can build
    did-you-mean suggestions without string-parsing the message.
    """

    def __init__(self, ref: str, reason: str, choices: Tuple[str, ...] = ()):
        super().__init__(f"{ref!r}: {reason}")
        self.ref = ref
        self.reason = reason
        self.choices = tuple(choices)

    def __str__(self) -> str:  # KeyError would repr() the message
        return f"{self.ref!r}: {self.reason}"


@dataclass(frozen=True)
class TargetSpec:
    """Declarative identity of one buildable workload target.

    The spec is the *key-grade* description of a target: everything a
    consumer needs to display it (``repro workloads``) or to scope a
    cache key to it (:attr:`spec_hash` joins memo keys for non-
    synthetic families).  Footprints are in blocks at paper scale;
    compressibility fractions are the per-core mean of the profile
    HCR/LCR/incompressible splits.
    """

    family: str
    target: str
    cores: int
    description: str
    footprint_blocks: int
    hcr_fraction: float
    lcr_fraction: float
    incompressible_fraction: float
    #: False for fixed-dimension targets (imported traces) that ignore
    #: ``ExperimentScale.factor`` and run as recorded.
    scalable: bool = True

    @property
    def ref(self) -> str:
        return f"{self.family}:{self.target}"

    def to_json(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "target": self.target,
            "cores": self.cores,
            "description": self.description,
            "footprint_blocks": self.footprint_blocks,
            "hcr_fraction": round(self.hcr_fraction, 6),
            "lcr_fraction": round(self.lcr_fraction, 6),
            "incompressible_fraction": round(self.incompressible_fraction, 6),
            "scalable": self.scalable,
        }

    @property
    def spec_hash(self) -> str:
        """Hex SHA-256 over the canonical spec rendering."""
        return hashlib.sha256(
            canonical_json(self.to_json()).encode("utf-8")
        ).hexdigest()


class WorkloadFamily:
    """One pluggable source of workload targets.

    Subclasses set :attr:`name` / :attr:`description` and implement
    :meth:`targets`, :meth:`target_spec` and :meth:`build`.
    """

    name: str = ""
    description: str = ""

    def targets(self) -> Tuple[str, ...]:
        """The buildable target names, in a stable order."""
        raise NotImplementedError

    def target_spec(self, target: str) -> TargetSpec:
        """The declarative spec of one target."""
        raise NotImplementedError

    def build(
        self, target: str, scale: "ExperimentScale", seed: int = 0
    ) -> "Workload":
        """A ready-to-simulate workload for ``target`` at ``scale``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def describe(self, target: str) -> Dict[str, object]:
        """Display metadata of one target (``repro workloads``)."""
        return self.target_spec(target).to_json()

    def check_target(self, target: str) -> str:
        """Validate a target name, raising :class:`WorkloadRefError`."""
        known = self.targets()
        if target not in known:
            raise WorkloadRefError(
                f"{self.name}:{target}",
                f"unknown {self.name} target {target!r}",
                choices=tuple(f"{self.name}:{t}" for t in known),
            )
        return target


def _mean_fractions(
    profiles: List[AppProfile],
) -> Tuple[float, float, float]:
    n = len(profiles)
    return (
        sum(p.hcr_fraction for p in profiles) / n,
        sum(p.lcr_fraction for p in profiles) / n,
        sum(p.incompressible_fraction for p in profiles) / n,
    )


class SyntheticProfileFamily(WorkloadFamily):
    """Base for families backed by paper-scale :class:`AppProfile` lists.

    Subclasses implement :meth:`_profiles` returning per-core profiles
    at paper scale; building scales them by ``scale.factor`` and
    routes through the shared in-process :class:`WorkloadCache` —
    exactly the pre-registry ``ExperimentScale.workload`` body, so the
    ``synthetic`` family stays byte-identical under the golden digests
    and every new family inherits the same caching.
    """

    def _profiles(self, target: str) -> List[AppProfile]:
        raise NotImplementedError

    def _target_description(self, target: str) -> str:
        return ""

    def target_spec(self, target: str) -> TargetSpec:
        self.check_target(target)
        profiles = self._profiles(target)
        hcr, lcr, inc = _mean_fractions(profiles)
        return TargetSpec(
            family=self.name,
            target=target,
            cores=len(profiles),
            description=self._target_description(target),
            footprint_blocks=sum(p.footprint_blocks for p in profiles),
            hcr_fraction=hcr,
            lcr_fraction=lcr,
            incompressible_fraction=inc,
        )

    def build(
        self, target: str, scale: "ExperimentScale", seed: int = 0
    ) -> "Workload":
        from ..engine import Workload
        from .cache import SHARED_WORKLOAD_CACHE

        self.check_target(target)
        profiles = [p.scaled(scale.factor) for p in self._profiles(target)]
        records = scale.trace_records_per_core
        family, name = self.name, target
        return SHARED_WORKLOAD_CACHE.get(
            profiles, seed, records,
            lambda: Workload(
                profiles, seed=seed, trace_records_per_core=records,
                family=family, target=name,
            ),
            token=self.name,
        )


class SyntheticMixFamily(SyntheticProfileFamily):
    """The paper's Table V mixes — the pre-registry workload space."""

    name = "synthetic"
    description = (
        "Table V multi-programmed SPEC mixes, calibrated to Fig. 2 "
        "(the paper's evaluation workloads)"
    )

    def targets(self) -> Tuple[str, ...]:
        return MIX_NAMES

    def _profiles(self, target: str) -> List[AppProfile]:
        return mix_profiles(target)

    def _target_description(self, target: str) -> str:
        from .mixes import MIXES

        return " + ".join(MIXES[target])


# ----------------------------------------------------------------------
# registry

_FAMILIES: Dict[str, WorkloadFamily] = {}

#: The family bare (no-colon) references resolve to.
DEFAULT_FAMILY = "synthetic"


def register_family(family: WorkloadFamily) -> WorkloadFamily:
    """Add a family to the registry (name collisions are a bug)."""
    if not family.name:
        raise ValueError("family has no name")
    if family.name in _FAMILIES:
        raise ValueError(f"workload family {family.name!r} already registered")
    _FAMILIES[family.name] = family
    return family


def family_names() -> Tuple[str, ...]:
    """Registered family names, default family first."""
    rest = sorted(n for n in _FAMILIES if n != DEFAULT_FAMILY)
    return (DEFAULT_FAMILY, *rest) if DEFAULT_FAMILY in _FAMILIES else tuple(rest)


def get_family(name: str) -> WorkloadFamily:
    try:
        return _FAMILIES[name]
    except KeyError:
        raise WorkloadRefError(
            name, f"unknown workload family {name!r}",
            choices=family_names(),
        ) from None


def parse_workload_ref(ref: str) -> Tuple[str, str]:
    """Split a ``family:target`` reference (bare name -> synthetic)."""
    if not isinstance(ref, str) or not ref:
        raise WorkloadRefError(str(ref), "empty workload reference")
    if ":" not in ref:
        return DEFAULT_FAMILY, ref
    family, _, target = ref.partition(":")
    if not family or not target:
        raise WorkloadRefError(
            ref, "malformed reference (want 'family:target' or a mix name)"
        )
    return family, target


def resolve_workload_ref(ref: str) -> Tuple[WorkloadFamily, str]:
    """Parse + validate a reference against the live registry."""
    family_name, target = parse_workload_ref(ref)
    family = get_family(family_name)
    family.check_target(target)
    return family, target


def normalize_workload_ref(ref: str) -> str:
    """Canonical form: bare names for synthetic targets, refs otherwise.

    ``synthetic:mix1`` and ``mix1`` are the same target; normalising
    to the bare spelling keeps campaign units (and hence memo result-
    cache keys) identical to the pre-registry key space.
    """
    family, target = resolve_workload_ref(ref)
    return target if family.name == DEFAULT_FAMILY else f"{family.name}:{target}"


def build_workload(
    ref: str, scale: "ExperimentScale", seed: int = 0
) -> "Workload":
    """Build the workload a reference names, at ``scale``."""
    family, target = resolve_workload_ref(ref)
    return family.build(target, scale=scale, seed=seed)


def workload_ref_fingerprint(ref: str) -> Optional[Dict[str, str]]:
    """The memo-key component of a reference, or ``None``.

    ``None`` for synthetic targets (bare mix names *are* the
    pre-registry key space — returning a component there would orphan
    every existing result-cache entry); a ``{family, target,
    spec_hash}`` dict for every other family, so cached results can
    never cross families and a re-imported external target (different
    spec hash) sheds its stale entries.
    """
    try:
        family_name, target = parse_workload_ref(ref)
    except WorkloadRefError:
        return None
    if family_name == DEFAULT_FAMILY:
        return None
    family = get_family(family_name)
    spec = family.target_spec(target)
    return {
        "family": family_name,
        "target": target,
        "spec_hash": spec.spec_hash,
    }


def workload_refs() -> Tuple[str, ...]:
    """Every buildable ``family:target`` reference, stably ordered."""
    refs: List[str] = []
    for name in family_names():
        family = _FAMILIES[name]
        refs.extend(f"{name}:{target}" for target in family.targets())
    return tuple(refs)


register_family(SyntheticMixFamily())

# Self-registration of the bundled families (import side effects are
# the registration calls; the names themselves are unused here).  Kept
# at the bottom so both modules can import the base classes above.
from . import external as _external  # noqa: E402,F401  (registers "external")
from . import families as _families  # noqa: E402,F401  (registers 3 families)
