"""System configuration for the hybrid-LLC reproduction.

The defaults encode Table IV of the paper (4-core ARMv8-class system,
private L1D/L2, shared non-inclusive hybrid LLC with 4 SRAM and 12 NVM
ways, DDR4 main memory).  Every experiment builds a
:class:`SystemConfig` and tweaks only what its sensitivity study
changes (way split, L2 size, NVM latency, endurance variability, ...).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Tuple, Union

BLOCK_SIZE = 64
"""Cache block size in bytes at every level (Table IV)."""

DEFAULT_ENGINE_BACKEND = "reference"
"""Engine backend selected when neither flag nor env asks otherwise."""

REPRO_BACKEND_ENV = "REPRO_BACKEND"
"""Environment variable overriding the default engine backend."""


def resolve_backend_name(explicit: Optional[str] = None) -> str:
    """Resolve the engine-backend name: flag > ``REPRO_BACKEND`` > default.

    Deliberately *not* part of :class:`SystemConfig`: backends are
    byte-identical by contract (the golden digests pin this), so the
    choice must never enter memo fingerprints or snapshot keys — it is
    an execution detail, like the number of worker processes.
    """
    if explicit:
        return explicit
    return os.environ.get(REPRO_BACKEND_ENV) or DEFAULT_ENGINE_BACKEND


REPRO_EXTERNAL_ENV = "REPRO_EXTERNAL_WORKLOADS"
"""Environment variable naming the external workload root directory."""


def resolve_external_root(
    explicit: Optional[Union[str, Path]] = None,
) -> Optional[Path]:
    """Resolve the external-workload root: argument > env > ``None``.

    ``None`` means no root is configured — the ``external`` workload
    family then simply has no targets.  Like the engine backend, the
    root *location* never enters memo fingerprints; the content-derived
    target spec hash (:attr:`~repro.workloads.registry.TargetSpec.spec_hash`)
    is what scopes cached results.
    """
    if explicit:
        return Path(explicit)
    value = os.environ.get(REPRO_EXTERNAL_ENV, "").strip()
    return Path(value) if value else None


def _check_power_of_two(value: int, name: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity of one set-associative cache."""

    size_bytes: int
    ways: int
    block_size: int = BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.block_size):
            raise ValueError(
                f"size {self.size_bytes} not divisible by ways*block "
                f"({self.ways}*{self.block_size})"
            )
        _check_power_of_two(self.n_sets, "number of sets")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.ways * self.block_size)

    @property
    def set_index_bits(self) -> int:
        return int(math.log2(self.n_sets))


@dataclass(frozen=True)
class HybridGeometry:
    """Geometry of the shared hybrid LLC.

    Ways ``0 .. sram_ways-1`` of every set are SRAM frames; ways
    ``sram_ways .. sram_ways+nvm_ways-1`` are NVM frames.  The paper's
    default is 4 SRAM + 12 NVM ways in 4 banks.
    """

    n_sets: int = 1024
    sram_ways: int = 4
    nvm_ways: int = 12
    n_banks: int = 4
    block_size: int = BLOCK_SIZE

    def __post_init__(self) -> None:
        _check_power_of_two(self.n_sets, "n_sets")
        _check_power_of_two(self.n_banks, "n_banks")
        if self.sram_ways < 0 or self.nvm_ways < 0 or not self.total_ways:
            raise ValueError("need at least one way")
        if self.n_sets % self.n_banks:
            raise ValueError("n_sets must be divisible by n_banks")

    @property
    def total_ways(self) -> int:
        return self.sram_ways + self.nvm_ways

    @property
    def size_bytes(self) -> int:
        return self.n_sets * self.total_ways * self.block_size

    @property
    def nvm_bytes(self) -> int:
        return self.n_sets * self.nvm_ways * self.block_size

    @property
    def sets_per_bank(self) -> int:
        return self.n_sets // self.n_banks


@dataclass(frozen=True)
class LatencyConfig:
    """Load-use / write latencies in core cycles (Table IV + NVSim).

    ``llc_nvm_extra`` charges the block-rearrangement crossbar and BDI
    decompression on NVM reads (Sec. III-B3: +2 cycles).
    """

    l1_hit: int = 3
    l2_hit: int = 12
    llc_sram_load: int = 28
    llc_nvm_load: int = 32
    llc_nvm_extra: int = 2
    llc_write: int = 20
    memory: int = 250
    cpu_freq_hz: float = 3.5e9

    @property
    def llc_nvm_total_load(self) -> int:
        return self.llc_nvm_load + self.llc_nvm_extra

    def scaled_nvm(self, factor: float) -> "LatencyConfig":
        """Return a copy with the NVM data-array read latency scaled.

        Fig. 11b scales only the NVM D-array portion (8 -> 12 cycles for
        factor 1.5); the remaining 24 cycles are tag/NoC and unchanged.
        """
        d_array = 8
        new_load = (self.llc_nvm_load - d_array) + int(round(d_array * factor))
        return replace(self, llc_nvm_load=new_load)


@dataclass(frozen=True)
class EnduranceConfig:
    """NVM bitcell endurance model (Sec. II-A).

    Per-byte write endurance is drawn from a normal distribution with
    ``mean`` writes and coefficient of variation ``cv``; draws are
    clipped at ``min_fraction * mean`` to avoid non-physical negative
    endurance for large cv.
    """

    mean: float = 1e10
    cv: float = 0.2
    min_fraction: float = 0.01
    seed: int = 0xE0D

    @property
    def sigma(self) -> float:
        return self.mean * self.cv


@dataclass(frozen=True)
class SetDuelingConfig:
    """Set-Dueling parameters (Sec. IV-C/IV-D).

    Candidate thresholds are the modified-BDI compressed sizes from 30
    to 64 bytes (Sec. IV-C: "a fixed value of CP_th, from 30 to 64").
    Each candidate owns ``n_sets / leader_groups`` leader sets; the
    paper dedicates N/32 sets per candidate.
    """

    cpth_candidates: Tuple[int, ...] = (30, 37, 44, 51, 58, 64)
    leader_groups: int = 32
    epoch_cycles: int = 2_000_000
    hit_loss_pct: float = 0.0   # Th  (CP_SD_Th only)
    write_gain_pct: float = 5.0  # Tw  (CP_SD_Th only)

    def with_th(self, th: float, tw: float = 5.0) -> "SetDuelingConfig":
        return replace(self, hit_loss_pct=th, write_gain_pct=tw)


@dataclass(frozen=True)
class CoreConfig:
    """Analytical core model parameters (Sec. V-A system, 8-wide OoO).

    ``base_cpi`` is the CPI of non-memory work; ``mlp`` divides miss
    penalties to model overlap in the out-of-order window.
    """

    n_cores: int = 4
    base_cpi: float = 0.4
    mlp: float = 8.0


@dataclass(frozen=True)
class SystemConfig:
    """Complete system: cores, private caches, hybrid LLC, NVM model."""

    cores: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheGeometry = field(default_factory=lambda: CacheGeometry(32 * 1024, 4))
    l2: CacheGeometry = field(default_factory=lambda: CacheGeometry(128 * 1024, 16))
    llc: HybridGeometry = field(default_factory=HybridGeometry)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    endurance: EnduranceConfig = field(default_factory=EnduranceConfig)
    dueling: SetDuelingConfig = field(default_factory=SetDuelingConfig)

    def with_llc(self, **kwargs) -> "SystemConfig":
        return replace(self, llc=replace(self.llc, **kwargs))

    def with_l2_kib(self, kib: int) -> "SystemConfig":
        return replace(self, l2=CacheGeometry(kib * 1024, self.l2.ways))

    def with_cv(self, cv: float) -> "SystemConfig":
        return replace(self, endurance=replace(self.endurance, cv=cv))

    def with_nvm_latency_factor(self, factor: float) -> "SystemConfig":
        return replace(self, latency=self.latency.scaled_nvm(factor))

    def with_dueling(self, dueling: SetDuelingConfig) -> "SystemConfig":
        return replace(self, dueling=dueling)


def paper_system(
    n_sets: int = 1024,
    sram_ways: int = 4,
    nvm_ways: int = 12,
    cv: float = 0.2,
    l2_kib: int = 128,
    nvm_latency_factor: float = 1.0,
) -> SystemConfig:
    """Build the Table IV system, with the sensitivity-study knobs exposed."""
    cfg = SystemConfig(
        llc=HybridGeometry(n_sets=n_sets, sram_ways=sram_ways, nvm_ways=nvm_ways),
        l2=CacheGeometry(l2_kib * 1024, 16),
        endurance=EnduranceConfig(cv=cv),
    )
    if nvm_latency_factor != 1.0:
        cfg = cfg.with_nvm_latency_factor(nvm_latency_factor)
    return cfg
