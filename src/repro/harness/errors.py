"""Error taxonomy and failure records of the campaign harness.

The scheduler never lets a worker exception, crash or hang escape as a
Python traceback; every anomaly is folded into a typed
:class:`AttemptFailure` record that drives the retry policy and, once
retries are exhausted, the structured failure report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Failure kinds recorded per attempt.
CRASH = "crash"            # worker process died (non-zero exit, signal)
TIMEOUT = "timeout"        # worker exceeded the per-task deadline
ERROR = "error"            # worker caught an exception and reported it
CORRUPT = "corrupt-result" # result file unreadable or failed verification
MISSING = "missing-result" # worker exited 0 but produced no result file

FAILURE_KINDS = (CRASH, TIMEOUT, ERROR, CORRUPT, MISSING)


class HarnessError(Exception):
    """Base class for campaign harness errors."""


class CampaignConfigError(HarnessError):
    """The campaign was configured inconsistently (bad resume dir, ...)."""


class CorruptResultError(HarnessError):
    """A result file exists but is truncated, unparsable or mismatched."""

    def __init__(self, path, reason: str):
        super().__init__(f"{path}: {reason}")
        self.path = str(path)
        self.reason = reason


@dataclass
class AttemptFailure:
    """One failed attempt at one task."""

    task_id: str
    attempt: int
    kind: str                      # one of FAILURE_KINDS
    detail: str = ""               # exit code, timeout value, ...
    traceback: Optional[str] = None

    def to_json(self) -> dict:
        record = {
            "task_id": self.task_id,
            "attempt": self.attempt,
            "kind": self.kind,
            "detail": self.detail,
        }
        if self.traceback:
            record["traceback"] = self.traceback
        return record


@dataclass
class TaskFailureReport:
    """A task that exhausted its retry budget."""

    task_id: str
    attempts: int
    failures: List[AttemptFailure] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "task_id": self.task_id,
            "attempts": self.attempts,
            "failures": [f.to_json() for f in self.failures],
        }
