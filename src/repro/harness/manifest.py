"""The campaign manifest: one JSON file that owns the campaign's truth.

``campaign.json`` lives at the root of a campaign directory and
records what the campaign *is* (scale, experiments, chaos settings)
and where every task *stands* (pending / complete / failed, with the
result file's relative path and content hash).  It is rewritten
atomically after every state change, so a campaign killed at any
instant leaves a manifest describing exactly the completed work — the
foundation of ``--resume``.

Layout of a campaign directory::

    campaign.json          # this manifest
    campaign.meta.json     # immutable identity (scale, experiments)
    results/<task>.json    # one verified result per completed task
    errors/<task>.attemptN.json   # captured tracebacks of failures
    failures.json          # final report of permanently-failed tasks
    quarantine/            # corrupt artefacts moved aside, with reasons

The manifest is mutable state and therefore the artefact most exposed
to a torn write; ``campaign.meta.json`` is written once at creation
and never again, so even a manifest destroyed by real disk corruption
can be rebuilt (``load(..., recover=True)``) from the meta record plus
whatever verified results survive on disk — the checkpoint
tail-truncation story: resume from the last valid records instead of
abandoning the campaign.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..fsio.durable import BlobError, read_bytes, unwrap_json
from ..fsio.quarantine import quarantine_file
from ..manifest import library_info
from .chaos import ChaosConfig
from .checkpoint import load_result, verify_result, write_json_atomic
from .errors import CampaignConfigError, CorruptResultError

PathLike = Union[str, Path]

MANIFEST_FORMAT = "repro-campaign/1"
MANIFEST_NAME = "campaign.json"
META_FORMAT = "repro-campaign-meta/1"
META_NAME = "campaign.meta.json"
RESULTS_DIR = "results"
ERRORS_DIR = "errors"
FAILURES_NAME = "failures.json"

PENDING = "pending"
COMPLETE = "complete"
FAILED = "failed"


@dataclass
class TaskEntry:
    """Manifest state of one task."""

    status: str = PENDING
    result: Optional[str] = None       # relative path of the result file
    sha256: Optional[str] = None
    attempts: int = 0
    error: Optional[dict] = None       # last failure, for FAILED tasks

    def to_json(self) -> dict:
        record = {"status": self.status, "attempts": self.attempts}
        if self.result is not None:
            record["result"] = self.result
        if self.sha256 is not None:
            record["sha256"] = self.sha256
        if self.error is not None:
            record["error"] = self.error
        return record

    @classmethod
    def from_json(cls, data: dict) -> "TaskEntry":
        return cls(
            status=data.get("status", PENDING),
            result=data.get("result"),
            sha256=data.get("sha256"),
            attempts=int(data.get("attempts", 0)),
            error=data.get("error"),
        )


@dataclass
class CampaignManifest:
    """In-memory mirror of ``campaign.json`` with atomic persistence."""

    directory: Path
    scale: str
    experiments: Tuple[str, ...]
    chaos: Optional[dict] = None       # last run's chaos settings (info only)
    backend: Optional[str] = None      # engine backend workers run under
    #: Last sharded run's fleet summary (per-shard wall clock, deaths)
    #: — mirrored from ``shards.json`` so ``repro status`` reads one
    #: file.  ``None`` for campaigns that never ran sharded.
    shards: Optional[dict] = None
    #: Workload references the campaign was created over (normalized
    #: ``family:target`` refs replacing the scale preset's mixes).
    #: ``None`` means the scale's default mixes — the pre-registry
    #: behaviour.
    workloads: Optional[Tuple[str, ...]] = None
    tasks: Dict[str, TaskEntry] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def meta_path(self) -> Path:
        return self.directory / META_NAME

    @property
    def results_dir(self) -> Path:
        return self.directory / RESULTS_DIR

    @property
    def errors_dir(self) -> Path:
        return self.directory / ERRORS_DIR

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: PathLike,
        scale: str,
        experiments,
        chaos: Optional[ChaosConfig] = None,
        backend: Optional[str] = None,
        workloads: Optional[Tuple[str, ...]] = None,
    ) -> "CampaignManifest":
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if backend is None:
            from ..config import resolve_backend_name

            backend = resolve_backend_name()
        manifest = cls(
            directory=directory,
            scale=scale,
            experiments=tuple(experiments),
            chaos=chaos.to_json() if chaos else None,
            backend=backend,
            workloads=tuple(workloads) if workloads else None,
        )
        manifest.results_dir.mkdir(exist_ok=True)
        manifest.errors_dir.mkdir(exist_ok=True)
        # Immutable identity record, written exactly once: the seed
        # recovery rebuilds from if campaign.json is ever destroyed.
        meta = {
            "scale": manifest.scale,
            "experiments": list(manifest.experiments),
            "backend": manifest.backend,
        }
        if manifest.workloads is not None:
            meta["workloads"] = list(manifest.workloads)
        write_json_atomic(manifest.meta_path, meta, schema=META_FORMAT)
        manifest.save()
        return manifest

    @classmethod
    def load(
        cls, directory: PathLike, recover: bool = False
    ) -> "CampaignManifest":
        directory = Path(directory)
        path = directory / MANIFEST_NAME
        if not path.exists():
            raise CampaignConfigError(
                f"{directory} is not a campaign directory (no {MANIFEST_NAME})"
            )
        try:
            data = unwrap_json(json.loads(read_bytes(path).decode()), path=path)
        except (OSError, ValueError, BlobError) as exc:
            # ValueError covers JSONDecodeError/UnicodeDecodeError and
            # BlobError subclasses it, but keep both spelled out: this
            # is the corruption boundary, not a parse nicety.
            if not recover:
                raise CampaignConfigError(
                    f"{path}: corrupt manifest ({exc})"
                ) from None
            return cls._recover(directory, str(exc))
        if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
            fmt = data.get("format") if isinstance(data, dict) else type(data)
            raise CampaignConfigError(
                f"{path}: unsupported manifest format {fmt!r}"
            )
        workloads = data.get("workloads")
        manifest = cls(
            directory=directory,
            scale=data["scale"],
            experiments=tuple(data["experiments"]),
            chaos=data.get("chaos"),
            backend=data.get("backend"),
            shards=data.get("shards"),
            workloads=tuple(workloads) if workloads else None,
            tasks={
                task_id: TaskEntry.from_json(entry)
                for task_id, entry in data.get("tasks", {}).items()
            },
        )
        manifest.results_dir.mkdir(exist_ok=True)
        manifest.errors_dir.mkdir(exist_ok=True)
        return manifest

    @classmethod
    def _recover(cls, directory: Path, reason: str) -> "CampaignManifest":
        """Rebuild a destroyed manifest from meta + surviving results.

        Completed work is re-discovered by verifying every result file
        on disk (the payload names its own task, so sanitised
        filenames are no obstacle); anything that fails verification
        is quarantined.  Tasks with no surviving result simply re-run.
        """
        meta_path = directory / META_NAME
        try:
            meta = unwrap_json(
                json.loads(meta_path.read_text()),
                schema=META_FORMAT,
                path=meta_path,
            )
        except (OSError, ValueError) as exc:
            raise CampaignConfigError(
                f"{directory}: manifest is corrupt and no usable "
                f"{META_NAME} to recover from ({exc})"
            ) from None
        quarantine_file(
            directory / MANIFEST_NAME,
            f"corrupt manifest: {reason}",
            "campaign-manifest",
            root=directory,
        )
        recovered_workloads = meta.get("workloads")
        manifest = cls(
            directory=directory,
            scale=meta["scale"],
            experiments=tuple(meta["experiments"]),
            backend=meta.get("backend"),
            workloads=(
                tuple(recovered_workloads) if recovered_workloads else None
            ),
        )
        manifest.results_dir.mkdir(exist_ok=True)
        manifest.errors_dir.mkdir(exist_ok=True)
        for result in sorted(manifest.results_dir.glob("*.json")):
            try:
                task_id = load_result(result).get("task_id")
                if not isinstance(task_id, str) or not task_id:
                    raise CorruptResultError(result, "no task_id in payload")
                _, sha256 = verify_result(result, task_id)
            except CorruptResultError as exc:
                quarantine_file(
                    result, exc.reason, "campaign-result", root=directory
                )
                continue
            manifest.tasks[task_id] = TaskEntry(
                status=COMPLETE,
                result=f"{RESULTS_DIR}/{result.name}",
                sha256=sha256,
            )
        manifest.save()
        return manifest

    def save(self) -> None:
        document = {
            "format": MANIFEST_FORMAT,
            "library": library_info(),
            "scale": self.scale,
            "experiments": list(self.experiments),
            "chaos": self.chaos,
            "backend": self.backend,
            "tasks": {
                task_id: entry.to_json()
                for task_id, entry in sorted(self.tasks.items())
            },
        }
        # Only sharded campaigns carry a fleet summary; omitting the
        # key keeps never-sharded manifests byte-identical to PR 6's.
        if self.shards is not None:
            document["shards"] = self.shards
        # Same byte-stability rule: only campaigns created over an
        # explicit workload list carry the key.
        if self.workloads is not None:
            document["workloads"] = list(self.workloads)
        write_json_atomic(self.path, document, schema=MANIFEST_FORMAT)

    # ------------------------------------------------------------------
    def entry(self, task_id: str) -> TaskEntry:
        return self.tasks.setdefault(task_id, TaskEntry())

    def mark_complete(
        self, task_id: str, result_relpath: str, sha256: str, attempts: int
    ) -> None:
        self.tasks[task_id] = TaskEntry(
            status=COMPLETE, result=result_relpath, sha256=sha256, attempts=attempts
        )
        self.save()

    def mark_failed(self, task_id: str, attempts: int, error: dict) -> None:
        self.tasks[task_id] = TaskEntry(
            status=FAILED, attempts=attempts, error=error
        )
        self.save()

    # ------------------------------------------------------------------
    def verified_complete(self, task_id: str) -> bool:
        """Is this task complete *and* its result file intact on disk?

        A manifest that says "complete" is not trusted blindly: the
        result file must still exist, parse, belong to the task and
        hash to the recorded digest.  Anything less re-runs the task.
        """
        entry = self.tasks.get(task_id)
        if entry is None or entry.status != COMPLETE or not entry.result:
            return False
        try:
            verify_result(
                self.directory / entry.result, task_id, entry.sha256
            )
        except CorruptResultError:
            return False
        return True

    def incomplete_tasks(self) -> List[str]:
        return [
            task_id
            for task_id, entry in sorted(self.tasks.items())
            if entry.status != COMPLETE
        ]
