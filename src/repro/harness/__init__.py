"""Fault-tolerant experiment campaign harness.

Runs a paper evaluation as a *campaign*: every (figure x mix x
policy) unit executes in a worker process — by default a persistent
pool worker with warm trace/workload caches, or (with
``isolate_tasks``) a fresh process per attempt — with a timeout and a
retry budget, completed results checkpoint atomically into a
manifest-tracked directory, and an interrupted or partially-failed
campaign resumes exactly where it left off.  A deterministic chaos
mode injects worker crashes, hangs and torn writes so the recovery
machinery itself stays under test.

See ``docs/harness.md`` for the campaign lifecycle and on-disk
formats.
"""

from .chaos import (
    ALL_CHAOS_KINDS,
    CHAOS_KINDS,
    ChaosConfig,
    ChaosSpecError,
    backoff_delay,
    parse_chaos_spec,
)
from .checkpoint import (
    ERROR_SCHEMA,
    RESULT_SCHEMA,
    dump_json,
    load_result,
    verify_result,
    write_atomic,
    write_json_atomic,
)
from .errors import (
    FAILURE_KINDS,
    AttemptFailure,
    CampaignConfigError,
    CorruptResultError,
    HarnessError,
    TaskFailureReport,
)
from .manifest import (
    COMPLETE,
    FAILED,
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    PENDING,
    CampaignManifest,
    TaskEntry,
)
from .scheduler import (
    CampaignReport,
    CampaignRunner,
    CampaignSettings,
    run_campaign,
)
from .worker import pool_worker_entry, worker_entry

__all__ = [
    "ALL_CHAOS_KINDS",
    "AttemptFailure",
    "CHAOS_KINDS",
    "COMPLETE",
    "CampaignConfigError",
    "CampaignManifest",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSettings",
    "ChaosConfig",
    "ChaosSpecError",
    "CorruptResultError",
    "ERROR_SCHEMA",
    "FAILED",
    "FAILURE_KINDS",
    "HarnessError",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "PENDING",
    "RESULT_SCHEMA",
    "TaskEntry",
    "TaskFailureReport",
    "backoff_delay",
    "dump_json",
    "load_result",
    "parse_chaos_spec",
    "pool_worker_entry",
    "run_campaign",
    "verify_result",
    "worker_entry",
    "write_atomic",
    "write_json_atomic",
]
