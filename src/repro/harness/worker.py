"""The isolated campaign worker: one process, one task attempt.

Workers are real OS processes, so a segfault, OOM kill or runaway
loop in one task can never take the scheduler or its siblings down.
The contract with the scheduler is deliberately thin:

* the worker receives one JSON payload (task, scale, paths, chaos);
* on success it writes the task's result *atomically* to
  ``result_path`` and exits 0;
* on a caught exception it writes a traceback record to
  ``error_path`` (also atomically) and exits 1;
* anything else — a crash, a kill, a hang — is the scheduler's
  problem to detect from the outside.

Chaos injection runs *inside* the worker, exactly where real faults
strike: a ``crash`` dies before any work, a ``timeout`` hangs past
the scheduler's deadline, and a ``corrupt`` bypasses the atomic
writer to leave a truncated result at the final path.
"""

from __future__ import annotations

import json
import os
import time
import traceback

from .chaos import (
    CHAOS_CRASH_EXIT,
    CORRUPT_KIND,
    CRASH_KIND,
    TIMEOUT_KIND,
    ChaosConfig,
)
from .checkpoint import write_json_atomic

#: Bytes a chaos "corrupt" injection leaves at the result path —
#: deliberately truncated JSON that can never parse.
CORRUPT_BYTES = b'{"status": "ok", "task_id": "truncat'


def build_payload(
    task_id: str,
    experiment: str,
    unit: dict,
    scale: str,
    result_path: str,
    error_path: str,
    attempt: int,
    chaos: ChaosConfig = None,
    hang_seconds: float = 3600.0,
    profile_dir: str = None,
) -> str:
    """Serialise one attempt's instructions for ``worker_entry``."""
    return json.dumps(
        {
            "task_id": task_id,
            "experiment": experiment,
            "unit": unit,
            "scale": scale,
            "result_path": result_path,
            "error_path": error_path,
            "attempt": attempt,
            "chaos": chaos.to_json() if chaos else None,
            "hang_seconds": hang_seconds,
            "profile_dir": profile_dir,
        }
    )


def _inject_chaos(payload: dict) -> None:
    """Apply this attempt's (deterministic) injected fault, if any."""
    if not payload.get("chaos"):
        return
    chaos = ChaosConfig.from_json(payload["chaos"])
    kind = chaos.decide(payload["task_id"], payload["attempt"])
    if kind is None:
        return
    if kind == CRASH_KIND:
        os._exit(CHAOS_CRASH_EXIT)
    elif kind == TIMEOUT_KIND:
        time.sleep(payload["hang_seconds"])
        os._exit(CHAOS_CRASH_EXIT)
    elif kind == CORRUPT_KIND:
        # A torn write: straight to the final path, no tmp+rename.
        with open(payload["result_path"], "wb") as fh:
            fh.write(CORRUPT_BYTES)
        os._exit(0)


def worker_entry(payload_json: str) -> None:
    """Process entry point: run one task attempt and exit.

    Must stay importable at module top level so it survives both
    ``fork`` and ``spawn`` multiprocessing start methods.
    """
    payload = json.loads(payload_json)
    _inject_chaos(payload)
    try:
        from ..experiments.campaign_tasks import run_campaign_task

        profile_dir = payload.get("profile_dir")
        if profile_dir:
            import cProfile
            from pathlib import Path

            profiler = cProfile.Profile()
            try:
                result = profiler.runcall(
                    run_campaign_task,
                    payload["experiment"], payload["unit"], payload["scale"],
                )
            finally:
                out = Path(profile_dir)
                out.mkdir(parents=True, exist_ok=True)
                name = payload["task_id"].replace("/", "_")
                profiler.dump_stats(out / f"{name}.pstats")
        else:
            result = run_campaign_task(
                payload["experiment"], payload["unit"], payload["scale"]
            )
        write_json_atomic(
            payload["result_path"],
            {
                "status": "ok",
                "task_id": payload["task_id"],
                "experiment": payload["experiment"],
                "unit": payload["unit"],
                "scale": payload["scale"],
                "result": result,
            },
        )
    except BaseException:
        try:
            write_json_atomic(
                payload["error_path"],
                {
                    "task_id": payload["task_id"],
                    "attempt": payload["attempt"],
                    "traceback": traceback.format_exc(),
                },
            )
        finally:
            os._exit(1)
    os._exit(0)
