"""Campaign workers: isolated one-shot processes and persistent pools.

Two execution modes share one attempt contract:

* **isolated** (``worker_entry``) — one process per task attempt, the
  PR 1 crash-containment model: a segfault, OOM kill or runaway loop
  in one task can never take the scheduler or its siblings down;
* **pooled** (``pool_worker_entry``) — a long-lived process that pulls
  *batches* of task payloads over a pipe and keeps its trace, sidecar
  and workload caches warm across tasks, so a policy matrix stops
  paying a fresh interpreter + workload build per cell.  Crash
  containment is unchanged — a dead pool worker is an event the
  scheduler observes via its process sentinel, and the in-flight task
  is requeued.

The attempt contract in both modes:

* the worker receives one JSON payload (task, scale, paths, chaos);
* on success it writes the task's result *atomically* to
  ``result_path`` (isolated: exits 0; pooled: reports ``ok``);
* on a caught exception it writes a traceback record to
  ``error_path`` (isolated: exits 1; pooled: reports ``error``);
* anything else — a crash, a kill, a hang — is the scheduler's
  problem to detect from the outside.

Shard processes (``repro serve-worker``, :mod:`repro.service.shard`)
are a third caller of the same contract: they execute
:func:`run_attempt` on payloads received over a socket instead of a
pipe, which is why sharded campaigns inherit every chaos and
durability guarantee the local modes prove.

Pool workers speak a tiny message protocol over their pipe:
``("run", [payload_json, ...])`` and ``("exit",)`` inbound;
``("start", task_id, monotonic)`` — the heartbeat that arms the
scheduler's per-task deadline — and ``("done", task_id, status,
elapsed_seconds)`` outbound.

Chaos injection runs *inside* the worker, exactly where real faults
strike: a ``crash`` dies before any work (killing the whole pool
worker — that is the point), a ``timeout`` hangs past the scheduler's
deadline, and a ``corrupt`` bypasses the atomic writer to leave a
truncated result at the final path while reporting success.  The
``disk-*`` kinds arm a one-shot :mod:`repro.fsio.faults` fault on the
attempt's own result write instead, so the storage layer's envelope
checks are exercised by a real task run.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback

from ..fsio.faults import DISK_CHAOS_KINDS, OneShotFault
from .chaos import (
    CHAOS_CRASH_EXIT,
    CORRUPT_KIND,
    CRASH_KIND,
    TIMEOUT_KIND,
    ChaosConfig,
)
from .checkpoint import ERROR_SCHEMA, RESULT_SCHEMA, write_json_atomic

#: Bytes a chaos "corrupt" injection leaves at the result path —
#: deliberately truncated JSON that can never parse.
CORRUPT_BYTES = b'{"status": "ok", "task_id": "truncat'


def build_payload(
    task_id: str,
    experiment: str,
    unit: dict,
    scale: str,
    result_path: str,
    error_path: str,
    attempt: int,
    chaos: ChaosConfig = None,
    hang_seconds: float = 3600.0,
    profile_dir: str = None,
) -> str:
    """Serialise one attempt's instructions for a worker."""
    return json.dumps(
        {
            "task_id": task_id,
            "experiment": experiment,
            "unit": unit,
            "scale": scale,
            "result_path": result_path,
            "error_path": error_path,
            "attempt": attempt,
            "chaos": chaos.to_json() if chaos else None,
            "hang_seconds": hang_seconds,
            "profile_dir": profile_dir,
        }
    )


def run_attempt(payload: dict) -> bool:
    """Apply this attempt's (deterministic) injected fault, then run it.

    Task-level chaos kinds act here (crash/timeout die, corrupt plants
    a torn result and reports success without running the task); the
    disk-level kinds instead arm a one-shot filesystem fault on this
    attempt's own result write, so the task runs for real and the
    fault strikes *inside* the storage layer — exactly the failure the
    envelope checks and scheduler verification must catch.
    """
    kind = None
    chaos = None
    if payload.get("chaos"):
        chaos = ChaosConfig.from_json(payload["chaos"])
        kind = chaos.decide(payload["task_id"], payload["attempt"])
    if kind == CRASH_KIND:
        os._exit(CHAOS_CRASH_EXIT)
    if kind == TIMEOUT_KIND:
        time.sleep(payload["hang_seconds"])
        os._exit(CHAOS_CRASH_EXIT)
    if kind == CORRUPT_KIND:
        # A torn write: straight to the final path, no tmp+rename.
        with open(payload["result_path"], "wb") as fh:
            fh.write(CORRUPT_BYTES)
        return True  # report success; the verifier must catch it
    if kind in DISK_CHAOS_KINDS:
        # Tie the fault's data-dependent details (tear offset, flipped
        # byte) to the same digest that picked the kind.
        digest = hashlib.sha256(
            f"repro-chaos:{chaos.seed}:{payload['task_id']}:"
            f"{payload['attempt']}".encode()
        ).digest()
        with OneShotFault(kind, payload["result_path"], digest=digest):
            return _execute_attempt(payload)
    return _execute_attempt(payload)


def _execute_attempt(payload: dict) -> bool:
    """Run one task attempt; write its result or error record.

    Returns ``True`` on a verified-writable success, ``False`` after
    writing the traceback record.  Never exits the process — the
    callers decide between ``os._exit`` (isolated) and reporting over
    the pipe (pooled).
    """
    try:
        from ..config import resolve_backend_name
        from ..experiments.campaign_tasks import run_campaign_task

        # Workers select the backend the way every Simulation does —
        # REPRO_BACKEND (exported by ``campaign --backend``) or the
        # default — and stamp it on the profile label and the result.
        backend = resolve_backend_name()
        profile_dir = payload.get("profile_dir")
        if profile_dir:
            import cProfile
            from pathlib import Path

            profiler = cProfile.Profile()
            try:
                result = profiler.runcall(
                    run_campaign_task,
                    payload["experiment"], payload["unit"], payload["scale"],
                )
            finally:
                out = Path(profile_dir)
                out.mkdir(parents=True, exist_ok=True)
                name = payload["task_id"].replace("/", "_")
                profiler.dump_stats(out / f"{name}_{backend}.pstats")
        else:
            result = run_campaign_task(
                payload["experiment"], payload["unit"], payload["scale"]
            )
        write_json_atomic(
            payload["result_path"],
            {
                "status": "ok",
                "task_id": payload["task_id"],
                "experiment": payload["experiment"],
                "unit": payload["unit"],
                "scale": payload["scale"],
                "backend": backend,
                "result": result,
            },
            schema=RESULT_SCHEMA,
        )
        return True
    except BaseException:
        try:
            write_json_atomic(
                payload["error_path"],
                {
                    "task_id": payload["task_id"],
                    "attempt": payload["attempt"],
                    "traceback": traceback.format_exc(),
                },
                schema=ERROR_SCHEMA,
            )
        except OSError:
            pass  # the scheduler still classifies by the missing result
        return False


def worker_entry(payload_json: str) -> None:
    """Isolated-mode entry point: run one task attempt and exit.

    Must stay importable at module top level so it survives both
    ``fork`` and ``spawn`` multiprocessing start methods.
    """
    payload = json.loads(payload_json)
    os._exit(0 if run_attempt(payload) else 1)


def pool_worker_entry(conn) -> None:
    """Persistent-pool entry point: serve task batches until told to exit.

    ``conn`` is the worker's end of a ``multiprocessing.Pipe``.  The
    loop is deliberately trusting of nothing: a scheduler that died
    (closed pipe) ends the worker, and any fault *inside* a task is
    either contained by ``_execute_attempt`` or kills this process —
    which the scheduler observes and recovers from.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if not message or message[0] == "exit":
            break
        if message[0] != "run":  # pragma: no cover - protocol guard
            continue
        for payload_json in message[1]:
            payload = json.loads(payload_json)
            started = time.monotonic()
            try:
                conn.send(("start", payload["task_id"], started))
            except (BrokenPipeError, OSError):
                return
            ok = run_attempt(payload)
            elapsed = time.monotonic() - started
            try:
                conn.send(
                    ("done", payload["task_id"], "ok" if ok else "error", elapsed)
                )
            except (BrokenPipeError, OSError):
                return
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass
