"""Atomic, verifiable result checkpoints.

Every campaign artefact — task results and the manifest itself — is
written through :mod:`repro.fsio`: serialise to a temporary file in
the *same directory*, ``fsync`` it, then ``rename`` over the final
path (and ``fsync`` the directory so the rename survives a power
cut).  A reader therefore only ever sees either the previous complete
version or the new complete version, never a torn write.

On top of atomicity, results now carry the ``repro-blob/1`` envelope
(schema tag + payload length + payload SHA-256), so a record that
*did* get torn or bit-flipped by real hardware — atomic rename can't
defend against media faults — is detected at read time instead of
poisoning a resume.  Files written before the envelope existed load
via legacy passthrough.

Integrity checking reuses
:func:`repro.workloads.traceio.file_sha256_cached` — the same
streamed content hash the trace loader uses, memoized by
``(path, size, mtime_ns, inode, ctime_ns)`` — so resuming a large
campaign verifies unchanged artefacts from the stat cache instead of
re-hashing every byte, while any rewrite re-hashes in full.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..fsio.durable import (
    BlobError,
    atomic_write_bytes,
    dump_json,
    read_bytes,
    unwrap_json,
    wrap_json,
)
from ..workloads.traceio import file_sha256_cached
from .errors import CorruptResultError

PathLike = Union[str, Path]

#: Envelope schema tags for the two worker-written artefact classes.
RESULT_SCHEMA = "repro-task-result/1"
ERROR_SCHEMA = "repro-task-error/1"

__all__ = [
    "ERROR_SCHEMA",
    "RESULT_SCHEMA",
    "dump_json",
    "load_result",
    "verify_result",
    "write_atomic",
    "write_json_atomic",
]


def write_atomic(path: PathLike, data: bytes) -> str:
    """Write ``data`` to ``path`` atomically; return its hex SHA-256."""
    return atomic_write_bytes(path, data)


def write_json_atomic(
    path: PathLike,
    obj: Any,
    schema: Optional[str] = None,
    annotations: Optional[dict] = None,
) -> str:
    """Atomically write canonical JSON; return the file's SHA-256.

    With ``schema`` the object is wrapped in a checksummed
    ``repro-blob/1`` envelope; without it the bytes are the bare
    document (manifest and ad-hoc artefacts keep their own formats).
    """
    if schema is not None:
        obj = wrap_json(obj, schema, annotations)
    return atomic_write_bytes(path, dump_json(obj))


def load_result(path: PathLike) -> Dict[str, Any]:
    """Load a task result file, raising ``CorruptResultError`` if bad.

    Reads through the fault-injectable fsio path, then validates the
    envelope when present: a record whose payload no longer matches
    its recorded checksum is corrupt even though it parses cleanly.
    """
    path = Path(path)
    if not path.exists():
        raise CorruptResultError(path, "missing")
    try:
        raw = read_bytes(path)
    except OSError as exc:
        raise CorruptResultError(path, f"unreadable ({exc})") from None
    try:
        data = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptResultError(path, f"unparsable JSON ({exc})") from None
    try:
        payload = unwrap_json(data, path=path)
    except BlobError as exc:
        raise CorruptResultError(path, exc.reason) from None
    if not isinstance(payload, dict):
        raise CorruptResultError(path, "not a JSON object")
    return payload


def verify_result(
    path: PathLike, task_id: str, expected_sha256: str = None
) -> Tuple[Dict[str, Any], str]:
    """Check a result file's integrity; return ``(payload, sha256)``.

    Validates — in order — that the file exists, parses and its
    envelope checksum holds, that it belongs to ``task_id``, that it
    reports success, and (when a manifest hash is supplied) that its
    bytes still match it.
    """
    payload = load_result(path)
    if payload.get("task_id") != task_id:
        raise CorruptResultError(
            path, f"task_id mismatch: {payload.get('task_id')!r} != {task_id!r}"
        )
    if payload.get("status") != "ok":
        raise CorruptResultError(path, f"status is {payload.get('status')!r}")
    actual = file_sha256_cached(path)
    if expected_sha256 is not None and actual != expected_sha256:
        raise CorruptResultError(
            path, f"sha256 mismatch: {actual} != {expected_sha256}"
        )
    return payload, actual
