"""Atomic, verifiable result checkpoints.

Every campaign artefact — task results and the manifest itself — is
written with :func:`write_atomic`: serialise to a temporary file in
the *same directory*, ``fsync`` it, then ``rename`` over the final
path (and ``fsync`` the directory so the rename survives a power
cut).  A reader therefore only ever sees either the previous complete
version or the new complete version, never a torn write.

Integrity checking reuses
:func:`repro.workloads.traceio.file_sha256_cached` — the same
streamed content hash the trace loader uses, memoized by
``(path, size, mtime_ns)`` — so resuming a large campaign verifies
unchanged artefacts from the stat cache instead of re-hashing every
byte, while any rewrite (size or mtime change) re-hashes in full.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Tuple, Union

from ..workloads.traceio import file_sha256_cached
from .errors import CorruptResultError

PathLike = Union[str, Path]


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_atomic(path: PathLike, data: bytes) -> str:
    """Write ``data`` to ``path`` atomically; return its hex SHA-256.

    The temporary file carries the writer's PID so concurrent workers
    retrying the same task can never collide on the tmp name either.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # replace failed; don't litter
            tmp.unlink()
    _fsync_dir(path.parent)
    return file_sha256_cached(path)


def dump_json(obj: Any) -> bytes:
    """Canonical JSON serialisation (sorted keys, stable layout).

    Determinism matters: a resumed campaign must reproduce the bytes
    of an uninterrupted one, so result files must serialise
    identically run-to-run.
    """
    return (json.dumps(obj, indent=2, sort_keys=True) + "\n").encode()


def write_json_atomic(path: PathLike, obj: Any) -> str:
    """Atomically write canonical JSON; return the file's SHA-256."""
    return write_atomic(path, dump_json(obj))


def load_result(path: PathLike) -> Dict[str, Any]:
    """Load a task result file, raising ``CorruptResultError`` if bad."""
    path = Path(path)
    if not path.exists():
        raise CorruptResultError(path, "missing")
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptResultError(path, f"unparsable JSON ({exc})") from None
    if not isinstance(data, dict):
        raise CorruptResultError(path, "not a JSON object")
    return data


def verify_result(
    path: PathLike, task_id: str, expected_sha256: str = None
) -> Tuple[Dict[str, Any], str]:
    """Check a result file's integrity; return ``(payload, sha256)``.

    Validates — in order — that the file exists and parses, that it
    belongs to ``task_id``, that it reports success, and (when a
    manifest hash is supplied) that its bytes still match it.
    """
    payload = load_result(path)
    if payload.get("task_id") != task_id:
        raise CorruptResultError(
            path, f"task_id mismatch: {payload.get('task_id')!r} != {task_id!r}"
        )
    if payload.get("status") != "ok":
        raise CorruptResultError(path, f"status is {payload.get('status')!r}")
    actual = file_sha256_cached(path)
    if expected_sha256 is not None and actual != expected_sha256:
        raise CorruptResultError(
            path, f"sha256 mismatch: {actual} != {expected_sha256}"
        )
    return payload, actual
