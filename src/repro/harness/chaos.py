"""Deterministic fault injection for exercising the harness itself.

Chaos mode makes the campaign runner's recovery paths testable in CI:
with ``--chaos p=0.3,kinds=crash,timeout,corrupt`` every (task,
attempt) pair independently draws an injected fault with probability
``p``.  Draws are *deterministic* — a SHA-256 of ``(seed, task_id,
attempt)`` — so a chaotic campaign is exactly reproducible and a test
can assert which attempts were sabotaged.

Injected fault kinds:

* ``crash``   — the worker dies instantly via ``os._exit`` (models an
  OOM kill or segfault);
* ``timeout`` — the worker hangs until the scheduler's per-task
  deadline kills it;
* ``corrupt`` — the worker writes a truncated, non-atomic result file
  to the final path and exits "successfully" (models a torn write),
  which the checkpoint verifier must catch.

Disk-level kinds (``disk-torn``, ``disk-enospc``, ``disk-flip``) are
delegated to :mod:`repro.fsio.faults`: the worker arms a one-shot
filesystem fault on its own result write, exercising the storage
layer's torn-write detection, ENOSPC degradation and checksum
validation end-to-end through a real campaign.

Because the draw is per-*attempt*, a sabotaged task's retries
eventually come up clean: with retry budget ``r`` a task is lost only
with probability ``p**(r+1)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..fsio.faults import DISK_CHAOS_KINDS

CRASH_KIND = "crash"
TIMEOUT_KIND = "timeout"
CORRUPT_KIND = "corrupt"
#: Default kind set: task-level faults only.  Disk kinds are opt-in
#: via an explicit ``kinds=`` list so ``--chaos p=...`` alone keeps
#: its original meaning.
CHAOS_KINDS = (CRASH_KIND, TIMEOUT_KIND, CORRUPT_KIND)
ALL_CHAOS_KINDS = CHAOS_KINDS + DISK_CHAOS_KINDS

#: Exit code of a chaos-crashed worker (distinguishable in reports).
CHAOS_CRASH_EXIT = 86


class ChaosSpecError(ValueError):
    """A ``--chaos`` specification string could not be parsed."""


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed chaos-injection parameters."""

    p: float = 0.0
    kinds: Tuple[str, ...] = CHAOS_KINDS
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.p <= 1.0:
            raise ChaosSpecError(f"chaos p must be in [0, 1], got {self.p}")
        unknown = [k for k in self.kinds if k not in ALL_CHAOS_KINDS]
        if unknown:
            raise ChaosSpecError(
                f"unknown chaos kinds {unknown}; "
                f"choose from {list(ALL_CHAOS_KINDS)}"
            )
        if not self.kinds:
            raise ChaosSpecError("chaos kinds must not be empty")

    # ------------------------------------------------------------------
    def decide(self, task_id: str, attempt: int) -> Optional[str]:
        """The fault (or ``None``) injected into this attempt.

        Pure function of ``(seed, task_id, attempt)`` — the scheduler,
        the worker and the tests all see the same decision.
        """
        digest = hashlib.sha256(
            f"repro-chaos:{self.seed}:{task_id}:{attempt}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        if draw >= self.p:
            return None
        index = int.from_bytes(digest[8:12], "big") % len(self.kinds)
        return self.kinds[index]

    def to_json(self) -> dict:
        return {"p": self.p, "kinds": list(self.kinds), "seed": self.seed}

    @classmethod
    def from_json(cls, data: dict) -> "ChaosConfig":
        return cls(
            p=float(data["p"]),
            kinds=tuple(data["kinds"]),
            seed=int(data.get("seed", 0)),
        )


def parse_chaos_spec(spec: str, seed: int = 0) -> ChaosConfig:
    """Parse ``p=0.3,kinds=crash,timeout,corrupt[,seed=7]``.

    ``kinds`` is comma-separated like the top-level fields, so any bare
    token (no ``=``) extends the most recent list-valued key.
    """
    p = 0.1
    kinds: Optional[list] = None
    collecting_kinds = False
    for token in filter(None, (t.strip() for t in spec.split(","))):
        if "=" in token:
            key, _, value = token.partition("=")
            key = key.strip()
            collecting_kinds = False
            if key == "p":
                try:
                    p = float(value)
                except ValueError:
                    raise ChaosSpecError(f"bad chaos p value {value!r}") from None
            elif key == "kinds":
                kinds = [value.strip()]
                collecting_kinds = True
            elif key == "seed":
                try:
                    seed = int(value)
                except ValueError:
                    raise ChaosSpecError(f"bad chaos seed {value!r}") from None
            else:
                raise ChaosSpecError(
                    f"unknown chaos key {key!r}; expected p, kinds or seed"
                )
        elif collecting_kinds:
            kinds.append(token)
        else:
            raise ChaosSpecError(f"stray chaos token {token!r}")
    return ChaosConfig(
        p=p, kinds=tuple(kinds) if kinds is not None else CHAOS_KINDS, seed=seed
    )


def backoff_delay(
    base: float, cap: float, tries: int, task_id: str, seed: int = 0
) -> float:
    """Bounded exponential backoff with deterministic jitter.

    The envelope is ``min(cap, base * 2**(tries-1))``; the jitter
    multiplies it by a factor in ``[0.5, 1.0)`` drawn — like every
    chaos decision — from a SHA-256 of ``(seed, task_id, tries)``, so
    retry schedules decorrelate across tasks (no thundering herd when
    a shared resource fails a whole batch) yet replay identically for
    a given seed.
    """
    if tries < 1:
        return 0.0
    envelope = min(cap, base * 2 ** (tries - 1))
    digest = hashlib.sha256(
        f"repro-backoff:{seed}:{task_id}:{tries}".encode()
    ).digest()
    jitter = 0.5 + 0.5 * (int.from_bytes(digest[:8], "big") / float(1 << 64))
    return envelope * jitter
