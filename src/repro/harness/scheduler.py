"""The fault-tolerant campaign scheduler.

Drives a set of :class:`~repro.experiments.campaign_tasks.CampaignTask`
units to completion across worker processes, in one of two modes:

* **pool** (default) — a persistent pool of long-lived workers pulls
  *batches* of tasks over pipes and keeps trace/sidecar/workload
  caches warm across tasks, so an N-cell policy matrix pays the
  interpreter spawn and workload build once per worker instead of
  once per cell;
* **isolated** (``isolate_tasks=True``) — the PR 1 model, one process
  per task attempt, for tasks that should never share an interpreter.

Both modes keep the same fault-tolerance guarantees:

* **crash containment** — a dead worker is an event, never an
  exception; its in-flight task requeues and (in pool mode) a fresh
  worker replaces it;
* **per-task deadlines** — pool workers heartbeat a ``start`` message
  per task, arming a deadline; a worker that blows it is killed and
  the attempt recorded as a timeout;
* **retry with exponential backoff** — failed attempts re-queue with
  ``base * 2**(tries-1)`` delay (capped), scaled by deterministic
  per-task jitter so simultaneous failures don't retry in lockstep,
  until the retry budget is exhausted;
* **checkpointing** — each verified result updates the atomic
  manifest, so progress survives the scheduler itself dying;
* **resume** — a re-run skips every verified-complete task and
  re-executes only missing, corrupt or failed ones.

The scheduler is single-threaded and event-driven: it blocks in
:func:`multiprocessing.connection.wait` on worker pipes and process
sentinels — completion is observed the instant it happens, not at the
next poll tick — with a bounded timeout so deadline and chaos checks
still fire even when every child is silent.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..experiments.campaign_tasks import CampaignTask, enumerate_campaign_tasks
from ..experiments.common import get_scale
from ..workloads.registry import normalize_workload_ref, workload_ref_fingerprint
from ..fsio.quarantine import quarantine_file
from ..memo.fingerprint import code_fingerprint
from ..memo.results import ResultCache, result_cache_dir, result_cache_key
from ..metrics.registry import register_metric
from .chaos import ChaosConfig, backoff_delay
from .checkpoint import (
    RESULT_SCHEMA,
    load_result,
    verify_result,
    write_json_atomic,
)
from .errors import (
    CRASH,
    CORRUPT,
    ERROR,
    TIMEOUT,
    AttemptFailure,
    CampaignConfigError,
    CorruptResultError,
    TaskFailureReport,
)
from .manifest import FAILURES_NAME, MANIFEST_NAME, CampaignManifest
from .worker import build_payload, pool_worker_entry, worker_entry

PathLike = Union[str, Path]
Progress = Optional[Callable[[str], None]]

#: Upper bound on one event-loop wait: deadline enforcement, backoff
#: release and ``stop_after`` checks can never lag further than this.
_WAIT_CAP = 0.2

#: Name of the per-campaign health record (a ``repro-run/1`` RunRecord
#: in a blob envelope) written after every scheduler invocation, so the
#: file exporter and the service's streaming ``/metrics`` endpoint read
#: the same scheduler/storage counters from the same artefact.
HEALTH_RECORD_NAME = "campaign.health.json"

# Scheduler counters, declared once like every other spine layer; the
# drift check in metrics.export asserts these stay attribute-for-
# attribute in step with CampaignReport.
register_metric("scheduler", "total", "count",
                "Tasks the campaign enumerated this invocation")
register_metric("scheduler", "completed", "count",
                "Tasks run (or cache-served) to verified success")
register_metric("scheduler", "skipped", "count",
                "Tasks already verified complete before the run started")
register_metric("scheduler", "retried_attempts", "count",
                "Failed attempts that were re-queued for another try")
register_metric("scheduler", "failed", "count",
                "Tasks that exhausted their retry budget",
                attr="failed_count")
register_metric("scheduler", "worker_respawns", "count",
                "Pool workers replaced after dying or blowing a deadline")
register_metric("scheduler", "cache_hits", "count",
                "Tasks served from the on-disk result cache")
register_metric("scheduler", "shard_deaths", "count",
                "Remote shards lost mid-campaign (sharded dispatch only)")


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class CampaignSettings:
    """Tunables of one campaign invocation (not persisted)."""

    #: Default to every core: the old ``min(4, cpu_count)`` silently
    #: capped wide machines at 4 workers.  The effective value is
    #: echoed in the campaign banner so the parallelism is visible.
    jobs: int = max(1, os.cpu_count() or 1)
    task_timeout: float = 600.0
    retries: int = 3
    backoff_base: float = 1.0
    backoff_cap: float = 30.0
    start_method: Optional[str] = None
    chaos: Optional[ChaosConfig] = None
    #: When set, every worker profiles its task attempt with cProfile
    #: and dumps ``<profile_dir>/<task_id>.pstats``.
    profile_dir: Optional[str] = None
    #: ``True`` restores the one-process-per-attempt mode (PR 1);
    #: the default runs a persistent worker pool with warm caches.
    isolate_tasks: bool = False
    #: Tasks dispatched to a pool worker per message.  1 keeps the
    #: scheduler maximally reactive; larger batches shave dispatch
    #: round-trips on very short tasks.
    batch_size: int = 1
    #: The on-disk result cache (:mod:`repro.memo.results`): completed
    #: unit payloads keyed by (fingerprint, experiment, unit, scale).
    #: ``False`` disables both lookup and store; the directory defaults
    #: to the ``REPRO_RESULT_CACHE`` env var (unset ⇒ disabled).
    use_result_cache: bool = True
    result_cache_dir: Optional[str] = None
    #: Shard endpoints (``host:port`` of ``repro serve-worker``
    #: processes).  When set, the campaign runs under the sharded
    #: dispatcher instead of the local pool; ``jobs`` is ignored — the
    #: fleet size is the parallelism.
    shards: Optional[Sequence[str]] = None


@dataclass
class CampaignReport:
    """Outcome of one scheduler invocation."""

    total: int = 0
    completed: int = 0                 # tasks run to success this invocation
    skipped: int = 0                   # verified complete before we started
    retried_attempts: int = 0          # failed attempts that were retried
    failed: List[TaskFailureReport] = field(default_factory=list)
    interrupted: bool = False
    #: Wall seconds of each *successful* attempt, by task id.  Pool
    #: mode measures inside the worker (dispatch overhead excluded);
    #: isolated mode measures launch-to-exit.
    durations: Dict[str, float] = field(default_factory=dict)
    #: Pool workers replaced after dying or blowing a deadline.
    worker_respawns: int = 0
    #: Tasks served from the result cache (subset of ``completed``) —
    #: verified, checkpointed and manifested like worker results, but
    #: never dispatched to a worker.
    cache_hits: int = 0
    #: Shards lost mid-run (sharded dispatch; pool deaths are
    #: ``worker_respawns``).  Their unstarted units requeued to
    #: survivors attempt-free.
    shard_deaths: int = 0
    #: Wall seconds each shard spent attached to this run, by shard id
    #: (sharded dispatch only) — mirrored into ``shards.json`` and the
    #: campaign manifest for ``repro status``.
    shard_walls: Dict[str, float] = field(default_factory=dict)

    @property
    def failed_count(self) -> int:
        return len(self.failed)

    @property
    def ok(self) -> bool:
        return (
            not self.failed
            and not self.interrupted
            and self.completed + self.skipped == self.total
        )


@dataclass
class _TaskState:
    task: CampaignTask
    attempts: int = 0                  # lifetime attempts (manifest-seeded)
    tries_this_run: int = 0
    next_eligible: float = 0.0         # monotonic clock
    failures: List[AttemptFailure] = field(default_factory=list)


@dataclass
class _Running:
    """One isolated-mode attempt in flight."""

    state: _TaskState
    process: multiprocessing.process.BaseProcess
    deadline: float
    attempt: int
    started: float


@dataclass
class _PoolTask:
    """One attempt dispatched to (not necessarily started by) a worker."""

    state: _TaskState
    attempt: int
    started: bool = False              # "start" heartbeat observed


@dataclass
class _PoolWorker:
    """One persistent worker and the batch it currently owns."""

    process: multiprocessing.process.BaseProcess
    conn: "multiprocessing.connection.Connection"
    assigned: List[_PoolTask] = field(default_factory=list)
    deadline: Optional[float] = None   # armed while a task is in flight

    @property
    def idle(self) -> bool:
        return not self.assigned


class CampaignRunner:
    """Execute (or resume) one campaign directory to completion."""

    def __init__(
        self,
        directory: PathLike,
        scale: str = "default",
        experiments: Sequence[str] = ("tables",),
        settings: Optional[CampaignSettings] = None,
        resume: bool = False,
        progress: Progress = None,
        stop_after: Optional[int] = None,
        workloads: Optional[Sequence[str]] = None,
    ):
        self.directory = Path(directory)
        self.settings = settings or CampaignSettings()
        self.progress = progress or (lambda message: None)
        self.stop_after = stop_after
        self._ctx = multiprocessing.get_context(
            self.settings.start_method or _default_start_method()
        )

        if resume:
            # recover=True: a corrupt manifest is quarantined and
            # rebuilt from campaign.meta.json + surviving verified
            # results instead of aborting the resume.
            self.manifest = CampaignManifest.load(self.directory, recover=True)
            self.scale_name = self.manifest.scale
            self.experiments = self.manifest.experiments
            # Workload identity (like scale and experiments): a resumed
            # campaign runs over the workloads it was created with.
            self.workloads = self.manifest.workloads
            self.manifest.chaos = (
                self.settings.chaos.to_json() if self.settings.chaos else None
            )
            # Like chaos, the backend reflects the *current* run: a
            # campaign resumed under REPRO_BACKEND=vectorized says so.
            from ..config import resolve_backend_name

            self.manifest.backend = resolve_backend_name()
        else:
            if (self.directory / MANIFEST_NAME).exists():
                raise CampaignConfigError(
                    f"{self.directory} already holds a campaign; "
                    f"continue it with --resume {self.directory}"
                )
            self.scale_name = scale
            self.experiments = tuple(experiments)
            # Validated + normalized eagerly (synthetic refs canonical-
            # ize to bare mix names) so unit ids, memo keys and the
            # manifest all agree on one spelling per target.
            self.workloads = (
                tuple(normalize_workload_ref(ref) for ref in workloads)
                if workloads
                else None
            )
            self.manifest = CampaignManifest.create(
                self.directory,
                scale=self.scale_name,
                experiments=self.experiments,
                chaos=self.settings.chaos,
                workloads=self.workloads,
            )
        # Scale names are validated eagerly so a typo fails fast.
        get_scale(self.scale_name)

        # Result cache: explicit dir > REPRO_RESULT_CACHE env > off.
        cache_root = None
        if self.settings.use_result_cache:
            if self.settings.result_cache_dir is not None:
                cache_root = Path(self.settings.result_cache_dir)
            else:
                cache_root = result_cache_dir()
        self.result_cache = (
            ResultCache(cache_root) if cache_root is not None else None
        )
        self._fingerprint = code_fingerprint()
        #: Structured telemetry tap: when set (the service server sets
        #: it to its event log), every unit/shard lifecycle event is
        #: delivered as a dict.  Purely observational — a sink that
        #: raises is disarmed, never the campaign.
        self.event_sink: Optional[Callable[[dict], None]] = None

    def _event(self, kind: str, /, **fields) -> None:
        # Positional-only: events carry a "kind" *field* too (failure
        # kinds), which must not collide with the event name argument.
        if self.event_sink is None:
            return
        event = {"event": kind}
        event.update(fields)
        try:
            self.event_sink(event)
        except Exception:
            self.event_sink = None  # a broken tap must not kill the run

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _clean_stale_tmp(self) -> None:
        for tmp in self.manifest.results_dir.glob(".*.tmp.*"):
            tmp.unlink()

    def _error_path(self, task: CampaignTask, attempt: int) -> Path:
        stem = task.filename[: -len(".json")]
        return self.manifest.errors_dir / f"{stem}.attempt{attempt}.json"

    def _result_path(self, task: CampaignTask) -> Path:
        return self.manifest.results_dir / task.filename

    def _payload(self, state: _TaskState, attempt: int) -> str:
        task = state.task
        return build_payload(
            task_id=task.task_id,
            experiment=task.experiment,
            unit=dict(task.unit),
            scale=self.scale_name,
            result_path=str(self._result_path(task)),
            error_path=str(self._error_path(task, attempt)),
            attempt=attempt,
            chaos=self.settings.chaos,
            hang_seconds=self.settings.task_timeout * 4 + 60.0,
            profile_dir=self.settings.profile_dir,
        )

    def _cache_key(self, task: CampaignTask) -> str:
        # The workload component is None for synthetic units, keeping
        # their keys byte-compatible with the pre-registry key space.
        ref = task.unit.get("mix") if hasattr(task.unit, "get") else None
        workload = (
            workload_ref_fingerprint(ref) if isinstance(ref, str) else None
        )
        return result_cache_key(
            task.experiment, task.unit, self.scale_name, self._fingerprint,
            workload=workload,
        )

    def _serve_from_cache(
        self, queue: List[_TaskState], report: CampaignReport
    ) -> List[_TaskState]:
        """Complete queued tasks whose results the cache already holds.

        A hit flows through the exact machinery a worker result would:
        the payload is written atomically to the task's result path,
        re-verified, and marked in the manifest — so resume, chaos and
        byte-identity guarantees are untouched.  Any defect (corrupt
        entry, unwritable results dir) downgrades to a miss and the
        task runs normally.
        """
        if self.result_cache is None or not queue:
            return queue
        remaining: List[_TaskState] = []
        for state in queue:
            task = state.task
            payload = self.result_cache.get(self._cache_key(task), task.task_id)
            if payload is None:
                remaining.append(state)
                continue
            result_path = self._result_path(task)
            try:
                # Same schema as a worker write: a cache-served result
                # is byte-identical to a freshly computed one.
                write_json_atomic(result_path, payload, schema=RESULT_SCHEMA)
                _, sha256 = verify_result(result_path, task.task_id)
            except (OSError, CorruptResultError):
                self._scrub_bad_result(task)
                remaining.append(state)
                continue
            self.manifest.mark_complete(
                task.task_id,
                f"{self.manifest.results_dir.name}/{task.filename}",
                sha256,
                state.attempts,
            )
            report.completed += 1
            report.cache_hits += 1
            self._event(
                "unit_cached",
                task_id=task.task_id,
                completed=report.completed + report.skipped,
                total=report.total,
            )
            self.progress(
                f"cached {task.task_id} "
                f"({report.completed + report.skipped}/{report.total})"
            )
        if report.cache_hits:
            self.progress(
                f"result cache: served {report.cache_hits} tasks "
                f"from {self.result_cache.root}"
            )
        return remaining

    def _scrub_bad_result(self, task: CampaignTask) -> None:
        """Never leave a bad result file where resume could trip on it.

        The bad bytes move to the campaign's ``quarantine/`` directory
        with a reason record — evidence for ``repro doctor`` — leaving
        ``results/`` holding only verified artefacts.
        """
        result_path = self._result_path(task)
        if result_path.exists():
            try:
                verify_result(result_path, task.task_id)
            except CorruptResultError as exc:
                quarantine_file(
                    result_path,
                    exc.reason,
                    "campaign-result",
                    root=self.directory,
                )
                if result_path.exists():  # quarantine move failed
                    result_path.unlink()

    def _complete(
        self, state: _TaskState, report: CampaignReport, duration: float
    ) -> Optional[AttemptFailure]:
        """Verify and record a reportedly-successful attempt.

        Returns ``None`` on success or the CORRUPT failure to apply.
        """
        task = state.task
        try:
            payload, sha256 = verify_result(
                self._result_path(task), task.task_id
            )
        except CorruptResultError as exc:
            return AttemptFailure(
                task.task_id, state.attempts, CORRUPT, exc.reason
            )
        self.manifest.mark_complete(
            task.task_id,
            f"{self.manifest.results_dir.name}/{task.filename}",
            sha256,
            state.attempts,
        )
        if self.result_cache is not None:
            # Only *verified* payloads enter the cache; put failures
            # (disk full, read-only cache) are silently dropped.  The
            # annotations let ``repro doctor`` audit entries for stale
            # fingerprints without re-deriving every key.
            self.result_cache.put(
                self._cache_key(task),
                payload,
                annotations={
                    "fingerprint": self._fingerprint,
                    "task_id": task.task_id,
                },
            )
        report.completed += 1
        report.durations[task.task_id] = duration
        self._event(
            "unit_done",
            task_id=task.task_id,
            elapsed=duration,
            completed=report.completed + report.skipped,
            total=report.total,
        )
        self.progress(
            f"done {task.task_id} "
            f"({report.completed + report.skipped}/{report.total})"
        )
        return None

    def _fail_attempt(
        self,
        state: _TaskState,
        report: CampaignReport,
        failure: AttemptFailure,
    ) -> Optional[_TaskState]:
        """Record a failed attempt; return the state to requeue, if any."""
        task = state.task
        state.failures.append(failure)
        self._scrub_bad_result(task)
        if state.tries_this_run > self.settings.retries:
            self.manifest.mark_failed(
                task.task_id, state.attempts, failure.to_json()
            )
            report.failed.append(
                TaskFailureReport(task.task_id, state.attempts, state.failures)
            )
            self._event(
                "unit_failed",
                task_id=task.task_id,
                attempts=state.attempts,
                kind=failure.kind,
                detail=failure.detail,
            )
            self.progress(
                f"FAILED {task.task_id} after {state.attempts} attempts "
                f"({failure.kind}: {failure.detail})"
            )
            return None
        # Deterministic jitter (seeded like chaos) decorrelates retry
        # schedules across tasks while keeping them reproducible.
        delay = backoff_delay(
            self.settings.backoff_base,
            self.settings.backoff_cap,
            state.tries_this_run,
            task.task_id,
            seed=self.settings.chaos.seed if self.settings.chaos else 0,
        )
        state.next_eligible = time.monotonic() + delay
        report.retried_attempts += 1
        self._event(
            "unit_retry",
            task_id=task.task_id,
            attempt=state.attempts,
            kind=failure.kind,
            delay=delay,
        )
        self.progress(
            f"retry {task.task_id} in {delay:.2g}s "
            f"(attempt {state.attempts} {failure.kind}: {failure.detail})"
        )
        return state

    def _error_failure(
        self, state: _TaskState, attempt: int, detail: str
    ) -> AttemptFailure:
        """An ERROR failure, with the worker's traceback if recorded."""
        error_path = self._error_path(state.task, attempt)
        trace = None
        if error_path.exists():
            try:
                trace = load_result(error_path).get("traceback")
            except CorruptResultError:
                trace = None
        return AttemptFailure(
            state.task.task_id, attempt, ERROR, detail, traceback=trace
        )

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        scale = get_scale(self.scale_name)
        if self.workloads:
            # An explicit workload list replaces the preset's mixes for
            # unit enumeration; workers resolve each ref through the
            # registry transparently (``scale.workload(ref)``).
            scale = replace(scale, mixes=tuple(self.workloads))
        tasks = enumerate_campaign_tasks(self.experiments, scale)
        self._clean_stale_tmp()

        report = CampaignReport(total=len(tasks))
        queue: List[_TaskState] = []
        for task in tasks:
            if self.manifest.verified_complete(task.task_id):
                report.skipped += 1
                continue
            entry = self.manifest.entry(task.task_id)
            queue.append(_TaskState(task=task, attempts=entry.attempts))
        queue = self._serve_from_cache(queue, report)
        self.manifest.save()
        # Imported lazily: the service package depends on this module.
        from ..service.dispatch import make_dispatcher

        dispatcher = make_dispatcher(self.settings)
        self.progress(
            f"campaign: {len(tasks)} tasks, jobs={self.settings.jobs} "
            f"[{dispatcher.name}] (cpu_count={os.cpu_count() or 1})"
        )
        if report.skipped:
            self.progress(f"resume: skipping {report.skipped} verified tasks")

        try:
            dispatcher.run(self, queue, report)
        finally:
            # Even an aborted run (all shards lost, Ctrl-C) leaves its
            # failure report and health record behind for resume/audit.
            self._write_failure_report(report)
            self._write_health_record(report, dispatcher.name)
        return report

    def _stop_requested(self, report: CampaignReport) -> bool:
        if (
            self.stop_after is not None
            and report.completed >= self.stop_after
        ):
            report.interrupted = True
            return True
        return False

    def _wait_timeout(
        self,
        queue: List[_TaskState],
        deadlines: List[float],
        now: float,
    ) -> float:
        """Sleep no longer than the next scheduled event (bounded)."""
        horizon = now + _WAIT_CAP
        for state in queue:
            if state.next_eligible > now:
                horizon = min(horizon, state.next_eligible)
        for deadline in deadlines:
            horizon = min(horizon, deadline)
        return max(0.01, horizon - now)

    # ------------------------------------------------------------------
    # isolated mode (one process per attempt)
    # ------------------------------------------------------------------
    def _launch(self, state: _TaskState) -> _Running:
        attempt = state.attempts + 1
        process = self._ctx.Process(
            target=worker_entry, args=(self._payload(state, attempt),),
            daemon=True,
        )
        process.start()
        now = time.monotonic()
        return _Running(
            state=state,
            process=process,
            deadline=now + self.settings.task_timeout,
            attempt=attempt,
            started=now,
        )

    def _kill(self, process: multiprocessing.process.BaseProcess) -> None:
        if process.is_alive():
            process.terminate()
            process.join(2.0)
            if process.is_alive():  # pragma: no cover - stubborn child
                process.kill()
                process.join(2.0)

    def _classify_exit(self, running: _Running, timed_out: bool) -> AttemptFailure:
        task = running.state.task
        if timed_out:
            return AttemptFailure(
                task.task_id,
                running.attempt,
                TIMEOUT,
                f"exceeded {self.settings.task_timeout:g}s deadline",
            )
        exitcode = running.process.exitcode
        if self._error_path(task, running.attempt).exists():
            return self._error_failure(
                running.state, running.attempt, f"worker exited {exitcode}"
            )
        if exitcode == 0:
            # Exited cleanly but the result did not verify.
            try:
                verify_result(self._result_path(task), task.task_id)
                raise AssertionError("classify called on verified result")
            except CorruptResultError as exc:
                return AttemptFailure(
                    task.task_id, running.attempt, CORRUPT, exc.reason
                )
        return AttemptFailure(
            task.task_id,
            running.attempt,
            CRASH,
            f"worker died with exit code {exitcode}",
        )

    def _settle(
        self, running: _Running, report: CampaignReport, timed_out: bool
    ) -> Optional[_TaskState]:
        state = running.state
        state.attempts = running.attempt
        state.tries_this_run += 1

        if not timed_out and running.process.exitcode == 0:
            failure = self._complete(
                state, report, time.monotonic() - running.started
            )
            if failure is None:
                return None
        else:
            failure = self._classify_exit(running, timed_out)
        return self._fail_attempt(state, report, failure)

    def _run_isolated(
        self, queue: List[_TaskState], report: CampaignReport
    ) -> None:
        running: Dict[int, _Running] = {}
        try:
            while queue or running:
                if self._stop_requested(report):
                    break
                # Settle finished and overdue workers first, so their
                # slots free up for this iteration's launches (settling
                # last would add a full wait timeout between tasks).
                for pid in list(running):
                    item = running[pid]
                    timed_out = False
                    if item.process.is_alive():
                        if time.monotonic() >= item.deadline:
                            self._kill(item.process)
                            timed_out = True
                        else:
                            continue
                    item.process.join()
                    del running[pid]
                    requeue = self._settle(item, report, timed_out)
                    if requeue is not None:
                        queue.append(requeue)
                # Launch every eligible task while worker slots are free.
                now = time.monotonic()
                index = 0
                while index < len(queue) and len(running) < self.settings.jobs:
                    if queue[index].next_eligible <= now:
                        state = queue.pop(index)
                        item = self._launch(state)
                        running[item.process.pid] = item
                    else:
                        index += 1
                # Block until a child exits (its sentinel fires), a
                # backoff releases, or a deadline nears.
                sentinels = [item.process.sentinel for item in running.values()]
                timeout = self._wait_timeout(
                    queue,
                    [item.deadline for item in running.values()],
                    time.monotonic(),
                )
                if sentinels:
                    multiprocessing.connection.wait(sentinels, timeout)
                elif queue:
                    time.sleep(timeout)
        finally:
            for item in running.values():
                self._kill(item.process)

    # ------------------------------------------------------------------
    # pool mode (persistent workers, batched dispatch)
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _PoolWorker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=pool_worker_entry, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        return _PoolWorker(process=process, conn=parent_conn)

    def _retire_worker(self, worker: _PoolWorker, kill: bool = True) -> None:
        if kill:
            self._kill(worker.process)
        worker.process.join()
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _dispatch(
        self,
        workers: List[_PoolWorker],
        queue: List[_TaskState],
        now: float,
    ) -> None:
        """Hand batches of eligible tasks to idle (spawning) workers."""
        eligible = [s for s in queue if s.next_eligible <= now]
        if not eligible:
            return
        for worker in workers:
            if not eligible:
                return
            if not worker.idle or not worker.process.is_alive():
                continue
            self._assign(worker, eligible, queue, now)
        while eligible and len(workers) < self.settings.jobs:
            worker = self._spawn_worker()
            workers.append(worker)
            self._assign(worker, eligible, queue, now)

    def _assign(
        self,
        worker: _PoolWorker,
        eligible: List[_TaskState],
        queue: List[_TaskState],
        now: float,
    ) -> None:
        batch: List[_PoolTask] = []
        payloads: List[str] = []
        while eligible and len(batch) < max(1, self.settings.batch_size):
            state = eligible.pop(0)
            queue.remove(state)
            attempt = state.attempts + 1
            batch.append(_PoolTask(state=state, attempt=attempt))
            payloads.append(self._payload(state, attempt))
        try:
            worker.conn.send(("run", payloads))
        except (BrokenPipeError, OSError):
            # Worker died between spawn and dispatch; requeue untouched
            # (no attempt consumed) — the reaper collects the corpse.
            for item in batch:
                queue.append(item.state)
            return
        worker.assigned.extend(batch)
        worker.deadline = now + self.settings.task_timeout

    def _on_message(
        self,
        worker: _PoolWorker,
        message,
        queue: List[_TaskState],
        report: CampaignReport,
    ) -> None:
        kind = message[0]
        if kind == "start":
            _, task_id, _worker_clock = message
            for item in worker.assigned:
                if item.state.task.task_id == task_id:
                    item.started = True
                    break
            worker.deadline = time.monotonic() + self.settings.task_timeout
            return
        if kind != "done":  # pragma: no cover - protocol guard
            return
        _, task_id, status, elapsed = message
        item = next(
            (i for i in worker.assigned if i.state.task.task_id == task_id),
            None,
        )
        if item is None:  # pragma: no cover - protocol guard
            return
        worker.assigned.remove(item)
        worker.deadline = (
            time.monotonic() + self.settings.task_timeout
            if worker.assigned
            else None
        )
        state = item.state
        state.attempts = item.attempt
        state.tries_this_run += 1
        if status == "ok":
            failure = self._complete(state, report, elapsed)
        else:
            failure = self._error_failure(
                state, item.attempt, "worker task raised"
            )
        if failure is not None:
            requeue = self._fail_attempt(state, report, failure)
            if requeue is not None:
                queue.append(requeue)

    def _drain(
        self,
        worker: _PoolWorker,
        queue: List[_TaskState],
        report: CampaignReport,
    ) -> None:
        try:
            while worker.conn.poll():
                self._on_message(worker, worker.conn.recv(), queue, report)
        except (EOFError, OSError):
            pass  # death is settled by the reaper

    def _fail_in_flight(
        self,
        worker: _PoolWorker,
        queue: List[_TaskState],
        report: CampaignReport,
        kind: str,
        detail: str,
    ) -> None:
        """Settle a dead/overdue worker's batch: charge started tasks,
        requeue unstarted ones without consuming an attempt."""
        for item in worker.assigned:
            state = item.state
            if not item.started:
                queue.append(state)
                continue
            state.attempts = item.attempt
            state.tries_this_run += 1
            failure = AttemptFailure(
                state.task.task_id, item.attempt, kind, detail
            )
            requeue = self._fail_attempt(state, report, failure)
            if requeue is not None:
                queue.append(requeue)
        worker.assigned.clear()
        worker.deadline = None

    def _reap_dead(
        self,
        workers: List[_PoolWorker],
        queue: List[_TaskState],
        report: CampaignReport,
    ) -> None:
        for worker in list(workers):
            if worker.process.is_alive():
                continue
            # Messages sent before death still count.
            self._drain(worker, queue, report)
            if worker.assigned:
                exitcode = worker.process.exitcode
                self._fail_in_flight(
                    worker, queue, report,
                    CRASH, f"pool worker died with exit code {exitcode}",
                )
            workers.remove(worker)
            self._retire_worker(worker, kill=False)
            report.worker_respawns += 1

    def _enforce_deadlines(
        self,
        workers: List[_PoolWorker],
        queue: List[_TaskState],
        report: CampaignReport,
        now: float,
    ) -> None:
        for worker in list(workers):
            if worker.deadline is None or now < worker.deadline:
                continue
            self._drain(worker, queue, report)
            if worker.deadline is None or time.monotonic() < worker.deadline:
                continue  # progress arrived while draining
            self._kill(worker.process)
            self._fail_in_flight(
                worker, queue, report,
                TIMEOUT,
                f"exceeded {self.settings.task_timeout:g}s deadline",
            )
            workers.remove(worker)
            self._retire_worker(worker, kill=False)
            report.worker_respawns += 1

    def _run_pool(
        self, queue: List[_TaskState], report: CampaignReport
    ) -> None:
        workers: List[_PoolWorker] = []
        try:
            while queue or any(w.assigned for w in workers):
                if self._stop_requested(report):
                    break
                now = time.monotonic()
                self._reap_dead(workers, queue, report)
                self._enforce_deadlines(workers, queue, report, now)
                self._dispatch(workers, queue, time.monotonic())
                handles = [w.conn for w in workers] + [
                    w.process.sentinel for w in workers
                ]
                timeout = self._wait_timeout(
                    queue,
                    [w.deadline for w in workers if w.deadline is not None],
                    time.monotonic(),
                )
                if handles:
                    ready = multiprocessing.connection.wait(handles, timeout)
                else:
                    time.sleep(timeout)
                    ready = []
                conns = {w.conn: w for w in workers}
                for handle in ready:
                    worker = conns.get(handle)
                    if worker is not None:
                        self._drain(worker, queue, report)
        finally:
            self._shutdown_pool(workers)

    def _shutdown_pool(self, workers: List[_PoolWorker]) -> None:
        for worker in workers:
            try:
                worker.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(0.5)
            self._retire_worker(worker)

    # ------------------------------------------------------------------
    def _write_health_record(
        self, report: CampaignReport, mode: str
    ) -> None:
        """Persist this invocation's scheduler/storage counters.

        One ``repro-run/1`` RunRecord (kind ``campaign-health``) in a
        checksummed envelope: the exact document ``repro export`` and
        ``repro status`` read back, and the one the service's streaming
        ``/metrics`` endpoint re-exports — file and socket telemetry
        agree because they are the same record.
        """
        from ..fsio.health import HEALTH
        from ..metrics.record import RunRecord
        from ..metrics.registry import REGISTRY

        metrics = {}
        metrics.update(REGISTRY.collect("scheduler", report))
        metrics.update(REGISTRY.collect("storage", HEALTH))
        meta = {
            "scale": self.scale_name,
            "experiments": list(self.experiments),
            "backend": self.manifest.backend,
            "mode": mode,
            "interrupted": report.interrupted,
        }
        # Only campaigns created over an explicit workload list carry
        # the key (byte-stability for default campaigns' records).
        if self.workloads:
            meta["workloads"] = list(self.workloads)
        record = RunRecord(
            kind="campaign-health",
            meta=meta,
            metrics=metrics,
            values={
                "shard_walls": dict(sorted(report.shard_walls.items())),
                "task_seconds": round(sum(report.durations.values()), 6),
            },
        )
        try:
            write_json_atomic(
                self.directory / HEALTH_RECORD_NAME,
                record.to_json(),
                schema=record.schema,
            )
        except OSError:
            pass  # telemetry must never fail the campaign itself

    # ------------------------------------------------------------------
    def _write_failure_report(self, report: CampaignReport) -> None:
        failures_path = self.directory / FAILURES_NAME
        if report.failed:
            write_json_atomic(
                failures_path,
                {
                    "campaign": str(self.directory),
                    "failed_tasks": [f.to_json() for f in report.failed],
                },
            )
            self.progress(f"failure report: {failures_path}")
        elif not report.interrupted and failures_path.exists():
            failures_path.unlink()


def run_campaign(
    directory: PathLike,
    scale: str = "default",
    experiments: Sequence[str] = ("tables",),
    settings: Optional[CampaignSettings] = None,
    resume: bool = False,
    progress: Progress = None,
    stop_after: Optional[int] = None,
    workloads: Optional[Sequence[str]] = None,
) -> CampaignReport:
    """Convenience wrapper: build a runner and run it."""
    runner = CampaignRunner(
        directory,
        scale=scale,
        experiments=experiments,
        settings=settings,
        resume=resume,
        progress=progress,
        stop_after=stop_after,
        workloads=workloads,
    )
    return runner.run()
