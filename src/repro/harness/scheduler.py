"""The fault-tolerant campaign scheduler.

Drives a set of :class:`~repro.experiments.campaign_tasks.CampaignTask`
units to completion across a pool of isolated worker processes:

* **crash containment** — workers are plain ``multiprocessing``
  processes; a dead worker is an event, never an exception;
* **per-task timeouts** — a hung worker is killed at its deadline and
  the attempt is recorded as a timeout;
* **retry with exponential backoff** — failed attempts re-queue with
  ``base * 2**(tries-1)`` delay (capped), until the retry budget is
  exhausted;
* **checkpointing** — each verified result updates the atomic
  manifest, so progress survives the scheduler itself dying;
* **resume** — a re-run skips every verified-complete task and
  re-executes only missing, corrupt or failed ones.

The scheduler is single-threaded and event-driven: it polls its
children (cheaply) rather than trusting them to report, because the
whole point is surviving children that cannot report.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..experiments.campaign_tasks import CampaignTask, enumerate_campaign_tasks
from ..experiments.common import get_scale
from .chaos import ChaosConfig
from .checkpoint import load_result, verify_result, write_json_atomic
from .errors import (
    CRASH,
    CORRUPT,
    ERROR,
    TIMEOUT,
    AttemptFailure,
    CampaignConfigError,
    CorruptResultError,
    TaskFailureReport,
)
from .manifest import FAILURES_NAME, MANIFEST_NAME, CampaignManifest
from .worker import build_payload, worker_entry

PathLike = Union[str, Path]
Progress = Optional[Callable[[str], None]]


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class CampaignSettings:
    """Tunables of one campaign invocation (not persisted)."""

    #: Default to every core: the old ``min(4, cpu_count)`` silently
    #: capped wide machines at 4 workers.  The effective value is
    #: echoed in the campaign banner so the parallelism is visible.
    jobs: int = max(1, os.cpu_count() or 1)
    task_timeout: float = 600.0
    retries: int = 3
    backoff_base: float = 1.0
    backoff_cap: float = 30.0
    start_method: Optional[str] = None
    chaos: Optional[ChaosConfig] = None
    #: When set, every worker profiles its task attempt with cProfile
    #: and dumps ``<profile_dir>/<task_id>.pstats``.
    profile_dir: Optional[str] = None


@dataclass
class CampaignReport:
    """Outcome of one scheduler invocation."""

    total: int = 0
    completed: int = 0                 # tasks run to success this invocation
    skipped: int = 0                   # verified complete before we started
    retried_attempts: int = 0          # failed attempts that were retried
    failed: List[TaskFailureReport] = field(default_factory=list)
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return (
            not self.failed
            and not self.interrupted
            and self.completed + self.skipped == self.total
        )


@dataclass
class _TaskState:
    task: CampaignTask
    attempts: int = 0                  # lifetime attempts (manifest-seeded)
    tries_this_run: int = 0
    next_eligible: float = 0.0         # monotonic clock
    failures: List[AttemptFailure] = field(default_factory=list)


@dataclass
class _Running:
    state: _TaskState
    process: multiprocessing.process.BaseProcess
    deadline: float
    attempt: int


class CampaignRunner:
    """Execute (or resume) one campaign directory to completion."""

    def __init__(
        self,
        directory: PathLike,
        scale: str = "default",
        experiments: Sequence[str] = ("tables",),
        settings: Optional[CampaignSettings] = None,
        resume: bool = False,
        progress: Progress = None,
        stop_after: Optional[int] = None,
    ):
        self.directory = Path(directory)
        self.settings = settings or CampaignSettings()
        self.progress = progress or (lambda message: None)
        self.stop_after = stop_after
        self._ctx = multiprocessing.get_context(
            self.settings.start_method or _default_start_method()
        )

        if resume:
            self.manifest = CampaignManifest.load(self.directory)
            self.scale_name = self.manifest.scale
            self.experiments = self.manifest.experiments
            self.manifest.chaos = (
                self.settings.chaos.to_json() if self.settings.chaos else None
            )
        else:
            if (self.directory / MANIFEST_NAME).exists():
                raise CampaignConfigError(
                    f"{self.directory} already holds a campaign; "
                    f"continue it with --resume {self.directory}"
                )
            self.scale_name = scale
            self.experiments = tuple(experiments)
            self.manifest = CampaignManifest.create(
                self.directory,
                scale=self.scale_name,
                experiments=self.experiments,
                chaos=self.settings.chaos,
            )
        # Scale names are validated eagerly so a typo fails fast.
        get_scale(self.scale_name)

    # ------------------------------------------------------------------
    def _clean_stale_tmp(self) -> None:
        for tmp in self.manifest.results_dir.glob(".*.tmp.*"):
            tmp.unlink()

    def _error_path(self, task: CampaignTask, attempt: int) -> Path:
        stem = task.filename[: -len(".json")]
        return self.manifest.errors_dir / f"{stem}.attempt{attempt}.json"

    def _launch(self, state: _TaskState) -> _Running:
        task = state.task
        attempt = state.attempts + 1
        payload = build_payload(
            task_id=task.task_id,
            experiment=task.experiment,
            unit=dict(task.unit),
            scale=self.scale_name,
            result_path=str(self.manifest.results_dir / task.filename),
            error_path=str(self._error_path(task, attempt)),
            attempt=attempt,
            chaos=self.settings.chaos,
            hang_seconds=self.settings.task_timeout * 4 + 60.0,
            profile_dir=self.settings.profile_dir,
        )
        process = self._ctx.Process(
            target=worker_entry, args=(payload,), daemon=True
        )
        process.start()
        return _Running(
            state=state,
            process=process,
            deadline=time.monotonic() + self.settings.task_timeout,
            attempt=attempt,
        )

    def _kill(self, running: _Running) -> None:
        process = running.process
        if process.is_alive():
            process.terminate()
            process.join(2.0)
            if process.is_alive():  # pragma: no cover - stubborn child
                process.kill()
                process.join(2.0)

    # ------------------------------------------------------------------
    def _classify_failure(
        self, running: _Running, timed_out: bool
    ) -> AttemptFailure:
        task = running.state.task
        result_path = self.manifest.results_dir / task.filename
        if timed_out:
            failure = AttemptFailure(
                task.task_id,
                running.attempt,
                TIMEOUT,
                f"exceeded {self.settings.task_timeout:g}s deadline",
            )
        else:
            exitcode = running.process.exitcode
            error_path = self._error_path(task, running.attempt)
            if error_path.exists():
                try:
                    record = load_result(error_path)
                    trace = record.get("traceback")
                except CorruptResultError:
                    trace = None
                failure = AttemptFailure(
                    task.task_id,
                    running.attempt,
                    ERROR,
                    f"worker exited {exitcode}",
                    traceback=trace,
                )
            elif exitcode == 0:
                # Exited cleanly but the result did not verify.
                try:
                    verify_result(result_path, task.task_id)
                    raise AssertionError("classify called on verified result")
                except CorruptResultError as exc:
                    failure = AttemptFailure(
                        task.task_id, running.attempt, CORRUPT, exc.reason
                    )
            else:
                failure = AttemptFailure(
                    task.task_id,
                    running.attempt,
                    CRASH,
                    f"worker died with exit code {exitcode}",
                )
        # Never leave a bad result file where resume could trip on it.
        if result_path.exists():
            try:
                verify_result(result_path, task.task_id)
            except CorruptResultError:
                result_path.unlink()
        return failure

    def _settle(self, running: _Running, report: CampaignReport, timed_out: bool):
        state = running.state
        task = state.task
        state.attempts = running.attempt
        state.tries_this_run += 1

        if not timed_out and running.process.exitcode == 0:
            result_path = self.manifest.results_dir / task.filename
            try:
                _, sha256 = verify_result(result_path, task.task_id)
            except CorruptResultError:
                pass
            else:
                self.manifest.mark_complete(
                    task.task_id,
                    f"{self.manifest.results_dir.name}/{task.filename}",
                    sha256,
                    state.attempts,
                )
                report.completed += 1
                self.progress(
                    f"done {task.task_id} "
                    f"({report.completed + report.skipped}/{report.total})"
                )
                return None

        failure = self._classify_failure(running, timed_out)
        state.failures.append(failure)
        if state.tries_this_run > self.settings.retries:
            self.manifest.mark_failed(
                task.task_id, state.attempts, failure.to_json()
            )
            report.failed.append(
                TaskFailureReport(task.task_id, state.attempts, state.failures)
            )
            self.progress(
                f"FAILED {task.task_id} after {state.attempts} attempts "
                f"({failure.kind}: {failure.detail})"
            )
            return None

        delay = min(
            self.settings.backoff_cap,
            self.settings.backoff_base * (2 ** (state.tries_this_run - 1)),
        )
        state.next_eligible = time.monotonic() + delay
        report.retried_attempts += 1
        self.progress(
            f"retry {task.task_id} in {delay:.2g}s "
            f"(attempt {running.attempt} {failure.kind}: {failure.detail})"
        )
        return state

    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        scale = get_scale(self.scale_name)
        tasks = enumerate_campaign_tasks(self.experiments, scale)
        self._clean_stale_tmp()

        report = CampaignReport(total=len(tasks))
        queue: List[_TaskState] = []
        for task in tasks:
            if self.manifest.verified_complete(task.task_id):
                report.skipped += 1
                continue
            entry = self.manifest.entry(task.task_id)
            queue.append(_TaskState(task=task, attempts=entry.attempts))
        self.manifest.save()
        self.progress(
            f"campaign: {len(tasks)} tasks, jobs={self.settings.jobs} "
            f"(cpu_count={os.cpu_count() or 1})"
        )
        if report.skipped:
            self.progress(f"resume: skipping {report.skipped} verified tasks")

        running: Dict[int, _Running] = {}
        try:
            while queue or running:
                if (
                    self.stop_after is not None
                    and report.completed >= self.stop_after
                ):
                    report.interrupted = True
                    break
                now = time.monotonic()
                # Launch every eligible task while worker slots are free.
                index = 0
                while index < len(queue) and len(running) < self.settings.jobs:
                    if queue[index].next_eligible <= now:
                        state = queue.pop(index)
                        item = self._launch(state)
                        running[item.process.pid] = item
                    else:
                        index += 1
                # Settle finished and overdue workers.
                for pid in list(running):
                    item = running[pid]
                    timed_out = False
                    if item.process.is_alive():
                        if time.monotonic() >= item.deadline:
                            self._kill(item)
                            timed_out = True
                        else:
                            continue
                    item.process.join()
                    del running[pid]
                    requeue = self._settle(item, report, timed_out)
                    if requeue is not None:
                        queue.append(requeue)
                time.sleep(0.02)
        finally:
            for item in running.values():
                self._kill(item)

        self._write_failure_report(report)
        return report

    # ------------------------------------------------------------------
    def _write_failure_report(self, report: CampaignReport) -> None:
        failures_path = self.directory / FAILURES_NAME
        if report.failed:
            write_json_atomic(
                failures_path,
                {
                    "campaign": str(self.directory),
                    "failed_tasks": [f.to_json() for f in report.failed],
                },
            )
            self.progress(f"failure report: {failures_path}")
        elif not report.interrupted and failures_path.exists():
            failures_path.unlink()


def run_campaign(
    directory: PathLike,
    scale: str = "default",
    experiments: Sequence[str] = ("tables",),
    settings: Optional[CampaignSettings] = None,
    resume: bool = False,
    progress: Progress = None,
    stop_after: Optional[int] = None,
) -> CampaignReport:
    """Convenience wrapper: build a runner and run it."""
    runner = CampaignRunner(
        directory,
        scale=scale,
        experiments=experiments,
        settings=settings,
        resume=resume,
        progress=progress,
        stop_after=stop_after,
    )
    return runner.run()
