"""Fig. 2 — block classification by compression ratio per application.

For every application the experiment samples block payloads through
the data model (which materialises real 64-byte patterns) and
compresses them with the actual modified-BDI compressor, reporting the
HCR / LCR / incompressible split.  Expected shape (Sec. II-B): on
average ~78 % of blocks compressible (49 % HCR + 29 % LCR);
GemsFDTD/zeusmp almost fully compressible; xz17/milc fully
incompressible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..compression.bdi import DEFAULT_COMPRESSOR
from ..compression.encodings import classify
from ..metrics.registry import register_metric
from ..workloads.data import DataModel
from ..workloads.profiles import APP_NAMES, profile
from ..workloads.trace import CORE_ADDR_SHIFT

register_metric("fig2", "hcr", "fraction",
                "Share of blocks compressing to the high-ratio class",
                aggregation="mean")
register_metric("fig2", "lcr", "fraction",
                "Share of blocks compressing to the low-ratio class",
                aggregation="mean")
register_metric("fig2", "incompressible", "fraction",
                "Share of blocks the compressor cannot shrink",
                aggregation="mean")


@dataclass(frozen=True)
class CompressibilityRow:
    app: str
    hcr: float
    lcr: float
    incompressible: float

    @property
    def compressible(self) -> float:
        return self.hcr + self.lcr


def classify_app(app_name: str, n_blocks: int = 512, seed: int = 0) -> CompressibilityRow:
    """Measure one app's class split with the real compressor.

    Blocks are sampled from the app's own reference stream (so the
    loop/scan/rw vs stream/random traffic balance is respected) and
    every payload is compressed with the actual modified BDI.
    """
    from ..workloads.generator import AppTraceGenerator

    prof = profile(app_name)
    model = DataModel([prof], seed=seed)
    gen = AppTraceGenerator(prof, core_id=0, seed=seed)
    counts: Dict[str, int] = {"hcr": 0, "lcr": 0, "incompressible": 0}
    for _ in range(n_blocks):
        record = next(gen)
        block = model.block_bytes(record.addr)
        result = DEFAULT_COMPRESSOR.compress(block)
        counts[classify(result.size)] += 1
    return CompressibilityRow(
        app=app_name,
        hcr=counts["hcr"] / n_blocks,
        lcr=counts["lcr"] / n_blocks,
        incompressible=counts["incompressible"] / n_blocks,
    )


def run_fig2(
    apps: Optional[Sequence[str]] = None, n_blocks: int = 512, seed: int = 0
) -> List[CompressibilityRow]:
    """Reproduce Fig. 2 across the given apps (default: all twenty)."""
    rows = [classify_app(a, n_blocks=n_blocks, seed=seed) for a in apps or APP_NAMES]
    mean = CompressibilityRow(
        app="average",
        hcr=sum(r.hcr for r in rows) / len(rows),
        lcr=sum(r.lcr for r in rows) / len(rows),
        incompressible=sum(r.incompressible for r in rows) / len(rows),
    )
    return rows + [mean]


# ----------------------------------------------------------------------
# Campaign units — one retryable task per application.

def enumerate_fig2_units(scale, apps: Optional[Sequence[str]] = None) -> List[dict]:
    """One campaign unit per app (``scale`` is irrelevant to Fig. 2)."""
    return [{"app": app} for app in (apps or APP_NAMES)]


def run_fig2_unit(scale, app: str, n_blocks: int = 512, seed: int = 0):
    """Classify one app's blocks; the campaign-worker entry point.

    Returns a :class:`~repro.metrics.RunRecord` with the
    compressibility split as registered ``fig2.*`` metrics.
    """
    from ..metrics import RunRecord

    row = classify_app(app, n_blocks=n_blocks, seed=seed)
    return RunRecord(
        kind="unit",
        meta={"experiment": "fig2", "app": row.app,
              "n_blocks": n_blocks, "seed": seed},
        metrics={
            "fig2.hcr": row.hcr,
            "fig2.lcr": row.lcr,
            "fig2.incompressible": row.incompressible,
        },
    )
