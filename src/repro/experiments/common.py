"""Shared experiment machinery: scale presets, system builders, helpers.

The paper's evaluation runs an 8 MB hybrid LLC (8192 sets x 16 ways)
under gem5 for hundreds of millions of cycles; a pure-Python simulator
cannot afford that for every figure, so experiments run at a *scale*:
caches, application working sets and epoch lengths shrink by the same
power-of-two factor, preserving every reuse-distance-to-capacity ratio
the policies respond to.  All of the paper's reported quantities are
normalised (to BH, or to the full-capacity cache), making them
scale-robust.

Select a preset with the ``REPRO_SCALE`` environment variable:
``smoke`` (CI-fast), ``default``, or ``paper`` (full size — slow).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..config import (
    CacheGeometry,
    EnduranceConfig,
    HybridGeometry,
    SetDuelingConfig,
    SystemConfig,
)
from ..engine import Workload
from ..workloads.mixes import MIX_NAMES

#: Full-size (paper) reference dimensions.
PAPER_N_SETS = 8192
PAPER_L1_KIB = 32
PAPER_L2_KIB = 128
PAPER_EPOCH_CYCLES = 2_000_000


@dataclass(frozen=True)
class ExperimentScale:
    """One coherent set of scaled-down experiment dimensions."""

    name: str
    factor: float                 # cache/footprint scale vs the paper
    phase_epochs: int             # measured epochs per simulation phase
    warmup_epochs: float          # epochs of warm-up before measuring
    trace_records_per_core: int
    mixes: Tuple[str, ...]        # which Table V mixes to run
    forecast_max_steps: int       # simulation/prediction alternations

    @property
    def n_sets(self) -> int:
        return max(128, int(PAPER_N_SETS * self.factor))

    @property
    def epoch_cycles(self) -> int:
        return max(50_000, int(PAPER_EPOCH_CYCLES * self.factor))

    @property
    def phase_cycles(self) -> float:
        return float(self.epoch_cycles * self.phase_epochs)

    @property
    def warmup_cycles(self) -> float:
        return float(self.epoch_cycles * self.warmup_epochs)

    @property
    def total_cycles(self) -> float:
        return self.warmup_cycles + self.phase_cycles

    # ------------------------------------------------------------------
    def system(
        self,
        sram_ways: int = 4,
        nvm_ways: int = 12,
        cv: float = 0.2,
        l2_kib: Optional[int] = None,
        nvm_latency_factor: float = 1.0,
        cpth_candidates: Optional[Tuple[int, ...]] = None,
    ) -> SystemConfig:
        """Build the (scaled) Table IV system with sensitivity knobs."""
        l1_kib = max(2, int(PAPER_L1_KIB * self.factor))
        l2 = l2_kib if l2_kib is not None else PAPER_L2_KIB
        l2_scaled = max(4, int(l2 * self.factor))
        dueling = SetDuelingConfig(epoch_cycles=self.epoch_cycles)
        if cpth_candidates is not None:
            dueling = replace(dueling, cpth_candidates=cpth_candidates)
        cfg = SystemConfig(
            l1=CacheGeometry(l1_kib * 1024, 4),
            l2=CacheGeometry(l2_scaled * 1024, 16),
            llc=HybridGeometry(
                n_sets=self.n_sets, sram_ways=sram_ways, nvm_ways=nvm_ways
            ),
            endurance=EnduranceConfig(cv=cv),
            dueling=dueling,
        )
        if nvm_latency_factor != 1.0:
            cfg = cfg.with_nvm_latency_factor(nvm_latency_factor)
        return cfg

    def workload(self, mix_name: str, seed: int = 0) -> Workload:
        """Build the workload a reference names, scaled to match.

        ``mix_name`` is a workload reference — a bare Table V mix name
        (``"mix1"``) or any registered ``family:target``
        (``"datacenter:kv_read"``, ``"external:masstree"``, …).  The
        registry routes synthetic families through the process-wide
        :class:`~repro.workloads.cache.WorkloadCache`: sweeps that
        revisit the same (target, seed, scale) share one built
        workload instead of regenerating identical traces per policy.
        """
        from ..workloads.registry import build_workload

        return build_workload(mix_name, scale=self, seed=seed)


SMOKE = ExperimentScale(
    name="smoke",
    factor=1 / 32,
    phase_epochs=3,
    warmup_epochs=1,
    trace_records_per_core=60_000,
    mixes=("mix1", "mix4"),
    forecast_max_steps=6,
)

DEFAULT = ExperimentScale(
    name="default",
    factor=1 / 16,
    phase_epochs=4,
    warmup_epochs=1,
    trace_records_per_core=120_000,
    mixes=("mix1", "mix4", "mix6"),
    forecast_max_steps=10,
)

FULL = ExperimentScale(
    name="full",
    factor=1 / 8,
    phase_epochs=6,
    warmup_epochs=2,
    trace_records_per_core=240_000,
    mixes=MIX_NAMES,
    forecast_max_steps=14,
)

PAPER = ExperimentScale(
    name="paper",
    factor=1.0,
    phase_epochs=8,
    warmup_epochs=2,
    trace_records_per_core=1_800_000,
    mixes=MIX_NAMES,
    forecast_max_steps=20,
)

_PRESETS: Dict[str, ExperimentScale] = {
    s.name: s for s in (SMOKE, DEFAULT, FULL, PAPER)
}

#: Valid ``--scale`` / ``REPRO_SCALE`` names, smallest first.
SCALE_NAMES: Tuple[str, ...] = tuple(_PRESETS)


def get_scale(name: Optional[str] = None) -> ExperimentScale:
    """Resolve the experiment scale (argument > env var > default)."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; choose from {sorted(_PRESETS)}"
        ) from None


def run_one(
    config: SystemConfig,
    policy,
    workload: Workload,
    warmup_epochs: float,
    measure_epochs: float,
    capacities=None,
    backend: Optional[str] = None,
):
    """One warm-up-then-measure simulation (shared by the sweeps).

    Returns a :class:`~repro.metrics.RunRecord` built from the live
    :class:`~repro.engine.SimulationResult`: record consumers read
    ``.metrics``/``.meta``/``.events``, while pre-spine callers keep
    using the delegated accessors (``stats``, ``epochs``, ``llc_hits``,
    …) unchanged — including the byte-identity golden digests.

    ``capacities`` optionally preloads an aged NVM fault map (shape
    ``(n_sets, nvm_ways)``) before the run — how the capacity-sweep
    experiments model a worn cache.

    When the in-process snapshot store is enabled (the default; see
    :mod:`repro.memo.snapshots`), the warmup prefix is keyed by
    (config, policy, workload, warmup, capacities): the first run of a
    prefix snapshots its warmed state and later runs restore it
    instead of re-simulating.  Warm and cold paths return
    byte-identical results — the store replays the warmup's epoch
    records too — so callers cannot observe which path ran.
    """
    import dataclasses as _dc

    from ..engine import Simulation
    from ..manifest import describe_policy, describe_workload
    from ..memo.snapshots import shared_snapshot_store, warm_prefix_key

    # Provenance is captured from the *pre-run* policy state so the
    # record is identical whether the warmup ran or was restored.
    meta = {
        "policy": describe_policy(policy),
        "workload": describe_workload(workload),
        "warmup_epochs": warmup_epochs,
        "measure_epochs": measure_epochs,
    }

    epoch = config.dueling.epoch_cycles
    warmup = epoch * warmup_epochs
    total = epoch * (warmup_epochs + measure_epochs)
    store = shared_snapshot_store()
    result = None
    if store is not None and warmup > 0:
        key = warm_prefix_key(config, policy, workload, warmup, capacities)
        if key is not None:
            entry = store.get(key)
            sim = Simulation(config, policy, workload, backend=backend)
            if entry is None:
                if capacities is not None:
                    sim.hierarchy.llc.faultmap.load_capacities(capacities)
                prefix = sim.run_until(warmup, warmup_until=warmup)
                store.put(key, sim.snapshot(), prefix.epochs)
                prefix_epochs = prefix.epochs
            else:
                # Capacities are baked into the snapshot (and the key).
                sim.restore(entry.snapshot)
                prefix_epochs = [_dc.replace(e) for e in entry.epochs]
            result = sim.run_until(total, warmup_until=warmup)
            result.epochs[:0] = prefix_epochs

    if result is None:
        sim = Simulation(config, policy, workload, backend=backend)
        if capacities is not None:
            sim.hierarchy.llc.faultmap.load_capacities(capacities)
        result = sim.run(cycles=total, warmup_cycles=warmup)

    return _record_from_sim(sim, result, meta)


def _record_from_sim(sim, result, meta):
    """Collect every registered layer of a finished simulation."""
    from ..metrics import REGISTRY

    # sim.policy (not the caller's argument) so the snapshot-restored
    # and cold paths observe the same post-run policy state.
    record = result.to_run_record(meta=meta, policy=sim.policy)
    # Provenance only: the backend is pinned byte-identical by the
    # golden digests, so it never enters memo fingerprints — but a
    # record should still say which engine produced it.
    record.meta["backend"] = sim.backend_name
    record.metrics.update(REGISTRY.collect("nvm", sim.hierarchy.llc.wear))
    controller = getattr(sim.policy, "controller", None)
    if controller is not None:
        record.metrics.update(REGISTRY.collect("duel", controller))
    # Storage-health provenance: 0 on a healthy cache, so clean runs
    # stay byte-identical while quiet corruption becomes visible.
    record.metrics.update(REGISTRY.collect("workload", sim.workload))
    return record


def aged_capacities(
    config: SystemConfig,
    target_fraction: float,
    granularity: str = "byte",
    seed_offset: int = 0,
):
    """Fault-map capacities of an NVM part aged to a capacity target.

    Ages a fresh :class:`~repro.forecast.aging.AgingModel` under a
    uniform write rate until effective capacity reaches the target —
    the wear-leveled steady state the paper's capacity sweeps assume.
    """
    import numpy as np

    from ..forecast.aging import AgingModel

    geom = config.llc
    aging = AgingModel(
        config.endurance,
        geom.n_sets,
        geom.nvm_ways,
        geom.block_size,
        granularity=granularity,
        seed_offset=seed_offset,
    )
    if target_fraction >= 1.0:
        return aging.capacities()
    rates = np.ones((geom.n_sets, geom.nvm_ways))
    dt = aging.time_to_capacity(rates, target_fraction, max_seconds=1e15)
    if dt is None:
        raise RuntimeError("could not age NVM to the requested capacity")
    aging.advance(rates, dt)
    return aging.capacities()


def geometric_mean(values) -> float:
    """Geometric mean (used for cross-mix aggregation where noted)."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        if v <= 0:
            return 0.0
        product *= v
    return product ** (1.0 / len(vals))
