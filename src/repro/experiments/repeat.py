"""Multi-seed repetition: mean and spread for any experiment metric.

Scaled-down runs are noisier than the paper's 200M-cycle gem5 samples;
when a comparison is close, repeat it over several workload seeds and
report mean +/- population std.  The helper is deliberately generic —
any callable mapping a seed to a dict of numeric metrics works.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Sequence

MetricFn = Callable[[int], Mapping[str, float]]


def run_with_seeds(fn: MetricFn, seeds: Sequence[int]) -> Dict[str, Dict[str, float]]:
    """Run ``fn(seed)`` for each seed; aggregate per-metric statistics.

    Returns ``{metric: {mean, std, min, max, n}}``; metrics missing
    from some runs are aggregated over the runs that produced them.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: Dict[str, List[float]] = {}
    for seed in seeds:
        result = fn(seed)
        for key, value in result.items():
            samples.setdefault(key, []).append(float(value))

    out: Dict[str, Dict[str, float]] = {}
    for key, values in samples.items():
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        out[key] = {
            "mean": mean,
            "std": math.sqrt(var),
            "min": min(values),
            "max": max(values),
            "n": float(n),
        }
    return out


def significant_difference(
    stats_a: Mapping[str, float], stats_b: Mapping[str, float], sigmas: float = 2.0
) -> bool:
    """Crude separation test: do the +/-``sigmas`` bands not overlap?"""
    lo_a = stats_a["mean"] - sigmas * stats_a["std"]
    hi_a = stats_a["mean"] + sigmas * stats_a["std"]
    lo_b = stats_b["mean"] - sigmas * stats_b["std"]
    hi_b = stats_b["mean"] + sigmas * stats_b["std"]
    return hi_a < lo_b or hi_b < lo_a


def policy_metric_fn(
    scale, policy_name: str, mix: str, warmup_epochs: float = 6,
    measure_epochs: float = 3, **policy_kwargs
) -> MetricFn:
    """A ready-made seed->metrics callable for one policy on one mix."""
    from ..core import make_policy
    from .common import run_one

    config = scale.system()

    def fn(seed: int) -> Dict[str, float]:
        workload = scale.workload(mix, seed=seed)
        res = run_one(config, make_policy(policy_name, **policy_kwargs),
                      workload, warmup_epochs, measure_epochs)
        return {
            "ipc": res.mean_ipc,
            "hit_rate": res.hit_rate,
            "nvm_bytes": float(res.nvm_bytes_written),
        }

    return fn
