"""Experiment runners reproducing every table and figure of the paper."""

from .ablations import (
    run_compressor_ablation,
    run_epoch_size_sweep,
    run_migration_ablation,
)
from .campaign_tasks import (
    ALL_EXPERIMENT_NAMES,
    EXPERIMENT_NAMES,
    EXPERIMENTS,
    CampaignTask,
    ExperimentDef,
    enumerate_campaign_tasks,
    run_campaign_task,
)
from .common import (
    DEFAULT,
    FULL,
    PAPER,
    SCALE_NAMES,
    SMOKE,
    ExperimentScale,
    aged_capacities,
    get_scale,
    run_one,
)
from .compressibility import CompressibilityRow, classify_app, run_fig2
from .cpth_sweep import SweepResult, run_cpth_sweep
from .energy_study import run_energy_study
from .figure_curves import render_study, study_capacity_curves, study_ipc_curves
from .lifetime import (
    SENSITIVITY_POLICIES,
    STANDARD_POLICIES,
    LifetimeStudy,
    bound_ipc,
    forecast_policy,
    run_fig11c_equal_cost,
    run_lifetime_study,
)
from .optimal_cpth import WinnerDistribution, run_fig8a, run_fig8b, winner_distribution
from .report import format_records, format_run_records, format_table
from .tables import table1_rows, table2_rows, table3_rows, table4_rows, table5_rows
from .th_tradeoff import TradeoffPoint, run_fig9
from .wear_leveling_study import run_wear_leveling_study

__all__ = [
    "ALL_EXPERIMENT_NAMES",
    "CampaignTask",
    "CompressibilityRow",
    "DEFAULT",
    "EXPERIMENTS",
    "EXPERIMENT_NAMES",
    "ExperimentDef",
    "ExperimentScale",
    "FULL",
    "LifetimeStudy",
    "PAPER",
    "SCALE_NAMES",
    "SENSITIVITY_POLICIES",
    "SMOKE",
    "STANDARD_POLICIES",
    "SweepResult",
    "TradeoffPoint",
    "WinnerDistribution",
    "aged_capacities",
    "bound_ipc",
    "classify_app",
    "enumerate_campaign_tasks",
    "forecast_policy",
    "format_records",
    "format_run_records",
    "format_table",
    "get_scale",
    "run_compressor_ablation",
    "run_cpth_sweep",
    "run_energy_study",
    "run_epoch_size_sweep",
    "run_fig11c_equal_cost",
    "run_migration_ablation",
    "run_wear_leveling_study",
    "render_study",
    "study_capacity_curves",
    "study_ipc_curves",
    "run_fig2",
    "run_fig8a",
    "run_fig8b",
    "run_fig9",
    "run_campaign_task",
    "run_lifetime_study",
    "run_one",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "winner_distribution",
]
