"""Benchmark cells: the campaign-schedulable unit of engine work.

``repro bench --jobs`` measures how campaign throughput scales with
worker count and execution mode (persistent pool vs per-task
processes).  For that it needs a matrix of *uniform, independently
runnable* tasks whose compute is pure engine work — so this module
packages one (policy, mix) simulation cell as a registered campaign
experiment.

Units deliberately report only deterministic counters (accesses,
hits, bytes, IPC) and no wall-clock numbers: the scheduler measures
each successful attempt's duration itself
(:attr:`repro.harness.CampaignReport.durations`), keeping result
files byte-stable across reruns — the property resume verification
relies on.

``bench_cells`` is registered for the campaign runner but excluded
from the default experiment set: it reproduces no paper figure, so a
plain ``repro campaign`` never schedules it unless asked to by name.
"""

from __future__ import annotations

from typing import List

from ..core import make_policy
from .common import ExperimentScale, run_one

#: Policy matrix of one scaling run: the paper's baselines + proposals
#: (same set the engine bench times), giving several same-mix cells in
#: a row so warm-pool reuse has something to reuse.
BENCH_CELL_POLICIES = ("bh", "bh_cp", "lhybrid", "tap", "ca", "ca_rwr", "cp_sd")

#: Cells per mix are what matters for warm reuse, not mix variety.
BENCH_CELL_MIXES = 2

#: Deliberately short cells: the scaling bench measures what the
#: *harness* adds per task (dispatch, process setup, cache rebuilds),
#: so the engine work inside each cell is kept small enough not to
#: drown the quantity under measurement.  Engine speed itself has its
#: own benchmark (``repro bench`` without ``--jobs``).
BENCH_CELL_EPOCHS = 1.0
BENCH_CELL_WARMUP_EPOCHS = 0.25


def enumerate_bench_cell_units(scale: ExperimentScale) -> List[dict]:
    """One unit per (mix, policy): every cell of the scaling matrix."""
    return [
        {"mix": mix, "policy": policy, "seed": 0}
        for mix in scale.mixes[:BENCH_CELL_MIXES]
        for policy in BENCH_CELL_POLICIES
    ]


def run_bench_cell_unit(
    scale: ExperimentScale, mix: str, policy: str, seed: int = 0
):
    """Simulate one cell; returns its deterministic RunRecord."""
    workload = scale.workload(mix, seed=seed)
    record = run_one(
        scale.system(),
        make_policy(policy),
        workload,
        warmup_epochs=BENCH_CELL_WARMUP_EPOCHS,
        measure_epochs=BENCH_CELL_EPOCHS,
    )
    record.meta.update(
        {"experiment": "bench_cells", "mix": mix,
         "unit_policy": policy, "seed": seed}
    )
    return record
