"""Figure-style curves from a lifetime study (Figs. 1/10/11 rendering).

`run_lifetime_study` keeps the raw per-mix forecasts; this module
turns them into the paper's plotted quantities: per-policy IPC-vs-time
and capacity-vs-time curves averaged over mixes on a common time grid,
optionally normalised to the 16-way SRAM bound, and rendered as ASCII
charts for terminals and artefact files.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.curves import (
    Curve,
    ascii_chart,
    average_curves,
    normalise,
    resample_capacity,
    resample_ipc,
    time_grid,
)
from .lifetime import LifetimeStudy


def study_ipc_curves(
    study: LifetimeStudy,
    points: int = 32,
    normalise_to_bound: bool = True,
    horizon: Optional[float] = None,
) -> List[Curve]:
    """One mix-averaged IPC curve per policy, on a shared grid."""
    all_runs = [run for runs in study.forecasts.values() for run in runs]
    grid = time_grid(all_runs, points=points, horizon=horizon)
    curves: List[Curve] = []
    for key, runs in study.forecasts.items():
        per_mix = [resample_ipc(run, grid) for run in runs]
        curve = average_curves(key, per_mix)
        if normalise_to_bound and study.upper_bound_ipc:
            curve = normalise(curve, study.upper_bound_ipc)
        curves.append(curve)
    return curves


def study_capacity_curves(
    study: LifetimeStudy, points: int = 32, horizon: Optional[float] = None
) -> List[Curve]:
    """One mix-averaged NVM-capacity curve per policy."""
    all_runs = [run for runs in study.forecasts.values() for run in runs]
    grid = time_grid(all_runs, points=points, horizon=horizon)
    return [
        average_curves(key, [resample_capacity(run, grid) for run in runs])
        for key, runs in study.forecasts.items()
    ]


def render_study(study: LifetimeStudy, width: int = 64, height: int = 12) -> str:
    """The Fig. 1-style twin chart (normalised IPC + capacity) as text."""
    ipc = study_ipc_curves(study)
    cap = study_capacity_curves(study)
    parts = [
        f"{study.label}: IPC normalised to the 16-way SRAM bound",
        ascii_chart(ipc, width=width, height=height),
        "",
        f"{study.label}: NVM effective capacity",
        ascii_chart(cap, width=width, height=height),
    ]
    return "\n".join(parts)
