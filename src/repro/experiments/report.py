"""Tiny plain-text table formatting for experiment output.

Benchmarks print the rows/series the paper reports; this keeps the
formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_records(records: Sequence[Mapping[str, Cell]], title: str = "") -> str:
    """Render a list of homogeneous dicts as a table."""
    if not records:
        return title + "\n(no data)" if title else "(no data)"
    headers = list(records[0].keys())
    rows = [[record.get(h) for h in headers] for record in records]
    return format_table(headers, rows, title=title)


def format_run_records(records, title: str = "") -> str:
    """Render :class:`~repro.metrics.RunRecord` objects as a metric table.

    One row per record; columns are the union of metric names in
    first-seen order, preceded by the record's kind and a short label
    (``meta`` task id / label / experiment when present).
    """
    from ..metrics.export import record_label

    if not records:
        return format_records([], title=title)
    headers: List[str] = []
    for record in records:
        for name in record.metrics:
            if name not in headers:
                headers.append(name)
    flat = [
        {
            "record": record_label(record, i),
            "kind": record.kind,
            **{name: record.metrics.get(name) for name in headers},
        }
        for i, record in enumerate(records)
    ]
    return format_records(flat, title=title)
