"""Figs. 6 and 7 — LLC hit rate and NVM bytes written vs ``CP_th``.

Sweeps the compression threshold over the Table I ladder for the CA
and CA_RWR policies, and runs CP_SD once, everything normalised to BH
on the same reference stream.  Expected shapes:

* Fig. 6: CA's normalised hit rate rises with CP_th and peaks around
  CP_th = 58; CA_RWR is above CA for small CP_th;
* Fig. 7: NVM bytes written grow steeply with CP_th; CA_RWR writes far
  fewer bytes than CA at high CP_th (read/write-reuse steering);
* CP_SD matches the best fixed threshold's hit rate while writing
  fewer bytes than CA_RWR at CP_th = 58/64.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compression.encodings import CPTH_LADDER
from ..core import make_policy
from .common import ExperimentScale, get_scale, run_one


@dataclass
class SweepResult:
    """Averaged (over mixes) normalised hit rates and NVM bytes."""

    cpth_values: Tuple[int, ...]
    ca_hit: Dict[int, float] = field(default_factory=dict)
    ca_bytes: Dict[int, float] = field(default_factory=dict)
    ca_rwr_hit: Dict[int, float] = field(default_factory=dict)
    ca_rwr_bytes: Dict[int, float] = field(default_factory=dict)
    cp_sd_hit: float = 0.0
    cp_sd_bytes: float = 0.0
    mixes: Tuple[str, ...] = ()

    def rows(self) -> List[dict]:
        out = []
        for cpth in self.cpth_values:
            out.append(
                {
                    "cpth": cpth,
                    "ca_hit": self.ca_hit[cpth],
                    "ca_rwr_hit": self.ca_rwr_hit[cpth],
                    "ca_bytes": self.ca_bytes[cpth],
                    "ca_rwr_bytes": self.ca_rwr_bytes[cpth],
                }
            )
        out.append(
            {
                "cpth": "SD",
                "ca_hit": None,
                "ca_rwr_hit": self.cp_sd_hit,
                "ca_bytes": None,
                "ca_rwr_bytes": self.cp_sd_bytes,
            }
        )
        return out


def run_cpth_sweep(
    scale: Optional[ExperimentScale] = None,
    mixes: Optional[Sequence[str]] = None,
    cpth_values: Sequence[int] = CPTH_LADDER,
    warmup_epochs: float = 6,
    measure_epochs: float = 3,
) -> SweepResult:
    """Run the Fig. 6/7 sweep; values are normalised to BH per mix."""
    scale = scale or get_scale()
    mixes = tuple(mixes if mixes is not None else scale.mixes)
    config = scale.system()

    acc: Dict[Tuple[str, int], List[float]] = {}
    acc_bytes: Dict[Tuple[str, int], List[float]] = {}
    sd_hits: List[float] = []
    sd_bytes: List[float] = []

    for mix in mixes:
        workload = scale.workload(mix)
        base = run_one(config, make_policy("bh"), workload, warmup_epochs, measure_epochs)
        base_hits = max(1, base.llc_hits)
        base_bytes = max(1, base.nvm_bytes_written)

        for cpth in cpth_values:
            for name in ("ca", "ca_rwr"):
                res = run_one(
                    config,
                    make_policy(name, cpth=cpth),
                    workload,
                    warmup_epochs,
                    measure_epochs,
                )
                acc.setdefault((name, cpth), []).append(res.llc_hits / base_hits)
                acc_bytes.setdefault((name, cpth), []).append(
                    res.nvm_bytes_written / base_bytes
                )

        res = run_one(config, make_policy("cp_sd"), workload, warmup_epochs, measure_epochs)
        sd_hits.append(res.llc_hits / base_hits)
        sd_bytes.append(res.nvm_bytes_written / base_bytes)

    def mean(values: List[float]) -> float:
        return sum(values) / len(values)

    result = SweepResult(cpth_values=tuple(cpth_values), mixes=mixes)
    for cpth in cpth_values:
        result.ca_hit[cpth] = mean(acc[("ca", cpth)])
        result.ca_bytes[cpth] = mean(acc_bytes[("ca", cpth)])
        result.ca_rwr_hit[cpth] = mean(acc[("ca_rwr", cpth)])
        result.ca_rwr_bytes[cpth] = mean(acc_bytes[("ca_rwr", cpth)])
    result.cp_sd_hit = mean(sd_hits)
    result.cp_sd_bytes = mean(sd_bytes)
    return result


# ----------------------------------------------------------------------
# Campaign units — one retryable task per (mix, policy[, CP_th]) run.
# Normalisation to BH happens at aggregation time from the per-mix
# ``bh`` baseline unit, so every unit stores raw counters.

def enumerate_cpth_units(
    scale,
    mixes: Optional[Sequence[str]] = None,
    cpth_values: Sequence[int] = CPTH_LADDER,
) -> List[dict]:
    units: List[dict] = []
    for mix in tuple(mixes if mixes is not None else scale.mixes):
        units.append({"mix": mix, "policy": "bh"})
        units.append({"mix": mix, "policy": "cp_sd"})
        for name in ("ca", "ca_rwr"):
            for cpth in cpth_values:
                units.append({"mix": mix, "policy": name, "cpth": int(cpth)})
    return units


def run_cpth_unit(
    scale,
    mix: str,
    policy: str,
    cpth: Optional[int] = None,
    warmup_epochs: float = 6,
    measure_epochs: float = 3,
):
    """One Fig. 6/7 simulation; the campaign-worker entry point.

    Returns the full :class:`~repro.metrics.RunRecord` of the run —
    aggregation (normalising to the per-mix ``bh`` unit) reads
    ``llc.*`` / ``sim.*`` metrics instead of a bespoke three-key dict.
    """
    config = scale.system()
    kwargs = {} if cpth is None else {"cpth": int(cpth)}
    record = run_one(
        config,
        make_policy(policy, **kwargs),
        scale.workload(mix),
        warmup_epochs,
        measure_epochs,
    )
    record.meta.update({"experiment": "fig6", "mix": mix, "unit_policy": policy})
    if cpth is not None:
        record.meta["cpth"] = int(cpth)
    return record
