"""Wear-leveling strategy study (Sec. II-A/III-B1 side claim).

The paper states its proposal is independent of the wear-leveling
mechanism and adopts the global-counter scheme of [24].  This study
drives the actual rearrangement circuitry with a realistic stream of
compressed-block writes under each strategy and reports the *wear
imbalance* (max/mean per-byte writes) — the factor by which the
most-written byte ages ahead of the average, i.e. lost lifetime.

Expected shape: no leveling is catastrophic for compressed writes
(every ECB hammers the low bytes); any rotation scheme (global
counter, per-frame, hashed) is within a few percent of perfectly even.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import numpy as np

from ..nvm.leveling import (
    GlobalCounterLeveling,
    HashedStart,
    NoLeveling,
    PerFrameRotation,
    WearLevelingStrategy,
    simulate_frame_wear,
    wear_imbalance,
)
from ..workloads.data import DataModel
from ..workloads.profiles import profile


def strategies() -> List[WearLevelingStrategy]:
    return [
        NoLeveling(),
        GlobalCounterLeveling(period_writes=8),
        PerFrameRotation(),
        HashedStart(),
    ]


def ecb_stream(
    app: str = "zeusmp06", n_writes: int = 4096, seed: int = 0
) -> List[int]:
    """A stream of ECB sizes drawn from an app's compressibility."""
    model = DataModel([profile(app)], seed=seed)
    rng = random.Random(seed)
    sizes = []
    for _ in range(n_writes):
        addr = rng.randrange(1 << 20)
        _csize, ecb = model.size_fn(addr)
        sizes.append(ecb)
    return sizes


def run_wear_leveling_study(
    app: str = "zeusmp06",
    n_writes: int = 4096,
    n_faulty_bytes: int = 6,
    seed: int = 0,
    strategy_list: Optional[Sequence[WearLevelingStrategy]] = None,
) -> List[dict]:
    """Imbalance of each strategy on a partially faulty frame."""
    live_mask = np.ones(64, dtype=bool)
    dead = random.Random(seed ^ 0xFA).sample(range(64), n_faulty_bytes)
    live_mask[dead] = False
    capacity = int(live_mask.sum())
    # fit-LRU never places a block that exceeds the frame's capacity
    sizes = [s for s in ecb_stream(app, n_writes, seed) if s <= capacity]

    rows = []
    for strategy in strategy_list if strategy_list is not None else strategies():
        counts = simulate_frame_wear(strategy, sizes, live_mask=live_mask)
        rows.append(
            {
                "strategy": strategy.name,
                "imbalance": wear_imbalance(counts, live_mask),
                "max_writes": int(counts.max()),
                "mean_writes": float(counts[live_mask].mean()),
                "dead_bytes_written": int(counts[~live_mask].sum()),
            }
        )
    return rows
