"""Figs. 1, 10a-c and 11a-c — performance vs lifetime forecasts.

Runs the forecasting procedure for a set of insertion policies over
the Table V mixes and reports, per policy: initial IPC (normalised to
the 16-way SRAM upper bound and to BH), and lifetime to 50 % NVM
effective capacity (absolute and relative to BH).  The sensitivity
studies (way split, endurance cv, L2 size, NVM latency, equal-storage
way counts) reuse the same runner with different system knobs.

Expected shapes (Sec. V-B..V-G):

* BH ~= upper bound IPC, shortest lifetime; BH_CP ~4.8x BH lifetime at
  equal IPC; LHybrid ~0.89x BH IPC at ~20x lifetime; TAP below
  LHybrid's IPC with even fewer NVM writes; CP_SD within a few % of BH
  IPC at >=10x BH lifetime; CP_SD_Th4/Th8 trade ~1-2 % IPC for
  ~28 %/44 % more lifetime than CP_SD.
* cv = 0.25 devastates frame-disabling lifetimes (BH, LHybrid) but
  barely moves byte-disabling ones (BH_CP, CP_SD*).
* A larger L2 filters writes (longer lifetimes) except for LHybrid.
* 1.5x NVM latency slightly lowers aggressive inserters' IPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import make_policy
from ..forecast import ForecastResult, Forecaster
from ..metrics.registry import register_metric
from .common import ExperimentScale, get_scale, run_one

register_metric("forecast", "initial_ipc", "instructions/cycle",
                "IPC of the fresh-cache phase of a lifetime forecast",
                aggregation="mean")
register_metric("forecast", "lifetime_seconds", "s",
                "Forecast time to 50% NVM effective capacity "
                "(or the horizon, if the stop was not reached)",
                aggregation="mean")
register_metric("forecast", "bound_ipc", "instructions/cycle",
                "IPC of an SRAM-only LLC bound configuration",
                aggregation="mean")

#: (key, policy name, kwargs) for the standard Fig. 1/10a line-up.
STANDARD_POLICIES: Tuple[Tuple[str, str, dict], ...] = (
    ("bh", "bh", {}),
    ("bh_cp", "bh_cp", {}),
    ("lhybrid", "lhybrid", {}),
    ("tap", "tap", {}),
    ("cp_sd", "cp_sd", {}),
    ("cp_sd_th4", "cp_sd_th", {"th": 4.0}),
    ("cp_sd_th8", "cp_sd_th", {"th": 8.0}),
)

#: Smaller line-up for the sensitivity studies.
SENSITIVITY_POLICIES: Tuple[Tuple[str, str, dict], ...] = (
    ("bh", "bh", {}),
    ("bh_cp", "bh_cp", {}),
    ("lhybrid", "lhybrid", {}),
    ("cp_sd", "cp_sd", {}),
    ("cp_sd_th8", "cp_sd_th", {"th": 8.0}),
)


@dataclass
class LifetimeStudy:
    """Aggregated forecast outcomes of one configuration."""

    label: str
    upper_bound_ipc: float
    lower_bound_ipc: float
    forecasts: Dict[str, List[ForecastResult]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def initial_ipc(self, key: str) -> float:
        runs = self.forecasts[key]
        return sum(r.initial_ipc for r in runs) / len(runs)

    def lifetime_seconds(self, key: str) -> float:
        runs = self.forecasts[key]
        return sum(r.lifetime_or_horizon_seconds() for r in runs) / len(runs)

    def lifetime_months(self, key: str) -> float:
        from ..forecast import SECONDS_PER_MONTH

        return self.lifetime_seconds(key) / SECONDS_PER_MONTH

    def rows(self) -> List[dict]:
        bh_life = self.lifetime_seconds("bh") if "bh" in self.forecasts else None
        out = []
        for key in self.forecasts:
            ipc = self.initial_ipc(key)
            row = {
                "policy": key,
                "ipc": ipc,
                "ipc_vs_bound": ipc / self.upper_bound_ipc
                if self.upper_bound_ipc
                else None,
                "lifetime_months": self.lifetime_months(key),
                "lifetime_x_bh": (
                    self.lifetime_seconds(key) / bh_life if bh_life else None
                ),
            }
            out.append(row)
        return out


def forecast_policy(
    scale: ExperimentScale,
    config,
    policy,
    workload,
    capacity_step: float = 0.1,
    phase_epochs: float = 2.0,
    warmup_epochs: float = 10.0,
) -> ForecastResult:
    epoch = config.dueling.epoch_cycles
    forecaster = Forecaster(
        config,
        policy,
        workload,
        phase_cycles=epoch * phase_epochs,
        initial_warmup_cycles=epoch * warmup_epochs,
        rewarm_cycles=epoch * 0.75,
        capacity_step=capacity_step,
        max_steps=scale.forecast_max_steps,
    )
    return forecaster.run()


def bound_ipc(
    scale: ExperimentScale, workload, ways: int, warmup_epochs: float = 10.0
) -> float:
    """IPC of an SRAM-only LLC with ``ways`` ways (upper/lower bound)."""
    config = scale.system(sram_ways=ways, nvm_ways=0)
    res = run_one(config, make_policy("sram"), workload, warmup_epochs, 2.0)
    return res.mean_ipc


def run_lifetime_study(
    scale: Optional[ExperimentScale] = None,
    label: str = "fig10a",
    mixes: Optional[Sequence[str]] = None,
    policies: Sequence[Tuple[str, str, dict]] = STANDARD_POLICIES,
    *,
    sram_ways: int = 4,
    nvm_ways: int = 12,
    cv: float = 0.2,
    l2_kib: Optional[int] = None,
    nvm_latency_factor: float = 1.0,
    with_bounds: bool = True,
) -> LifetimeStudy:
    """One full performance-vs-lifetime study (one paper sub-figure)."""
    scale = scale or get_scale()
    mixes = tuple(mixes if mixes is not None else scale.mixes)
    config = scale.system(
        sram_ways=sram_ways,
        nvm_ways=nvm_ways,
        cv=cv,
        l2_kib=l2_kib,
        nvm_latency_factor=nvm_latency_factor,
    )
    workloads = {mix: scale.workload(mix) for mix in mixes}

    upper = lower = 0.0
    if with_bounds:
        total_ways = sram_ways + nvm_ways
        uppers = [bound_ipc(scale, wl, total_ways) for wl in workloads.values()]
        lowers = [bound_ipc(scale, wl, sram_ways) for wl in workloads.values()]
        upper = sum(uppers) / len(uppers)
        lower = sum(lowers) / len(lowers)

    study = LifetimeStudy(label=label, upper_bound_ipc=upper, lower_bound_ipc=lower)
    for key, name, kwargs in policies:
        runs = []
        for mix in mixes:
            policy = make_policy(name, **kwargs)
            runs.append(forecast_policy(scale, config, policy, workloads[mix]))
        study.forecasts[key] = runs
    return study


def run_fig11c_equal_cost(
    scale: Optional[ExperimentScale] = None,
    mixes: Optional[Sequence[str]] = None,
) -> List[dict]:
    """Fig. 11c — CP_SD_Th8 with 12/11/10 NVM ways vs LHybrid with 12.

    Byte-level fault maps cost ~12 % of the NVM data array; dropping
    one or two NVM ways equalises total storage with LHybrid's
    frame-disabled design.  Expected: fewer ways cost some IPC and
    lifetime, but even the 10-way CP_SD_Th8 outperforms LHybrid's IPC.
    """
    scale = scale or get_scale()
    mixes = tuple(mixes if mixes is not None else scale.mixes)
    rows: List[dict] = []

    ref = run_lifetime_study(
        scale,
        label="fig11c-ref",
        mixes=mixes,
        policies=(("bh", "bh", {}), ("lhybrid", "lhybrid", {})),
        with_bounds=False,
    )
    bh_life = ref.lifetime_seconds("bh")
    rows.append(
        {
            "config": "lhybrid 12w",
            "ipc": ref.initial_ipc("lhybrid"),
            "lifetime_months": ref.lifetime_months("lhybrid"),
            "lifetime_x_bh": ref.lifetime_seconds("lhybrid") / bh_life,
        }
    )
    for nvm_ways in (12, 11, 10):
        study = run_lifetime_study(
            scale,
            label=f"fig11c-{nvm_ways}w",
            mixes=mixes,
            policies=(("cp_sd_th8", "cp_sd_th", {"th": 8.0}),),
            nvm_ways=nvm_ways,
            with_bounds=False,
        )
        rows.append(
            {
                "config": f"cp_sd_th8 {nvm_ways}w",
                "ipc": study.initial_ipc("cp_sd_th8"),
                "lifetime_months": study.lifetime_months("cp_sd_th8"),
                "lifetime_x_bh": study.lifetime_seconds("cp_sd_th8") / bh_life,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Campaign units — one retryable task per (mix, policy) forecast plus
# the per-mix SRAM-only IPC bounds.  ``nvm_ways`` lets the Fig. 11c
# equal-storage variants reuse the same unit runner.

#: Policy key -> (registry name, kwargs), covering every study line-up.
POLICY_SPECS: Dict[str, Tuple[str, dict]] = {
    key: (name, kwargs) for key, name, kwargs in STANDARD_POLICIES
}


def enumerate_lifetime_units(
    scale,
    mixes: Optional[Sequence[str]] = None,
    policies: Sequence[Tuple[str, str, dict]] = STANDARD_POLICIES,
    with_bounds: bool = True,
    sram_ways: int = 4,
    nvm_ways: int = 12,
) -> List[dict]:
    units: List[dict] = []
    for mix in tuple(mixes if mixes is not None else scale.mixes):
        if with_bounds:
            units.append({"mix": mix, "kind": "bound", "ways": sram_ways + nvm_ways})
            units.append({"mix": mix, "kind": "bound", "ways": sram_ways})
        for key, _, _ in policies:
            unit = {"mix": mix, "kind": "forecast", "policy": key}
            if nvm_ways != 12:
                unit["nvm_ways"] = nvm_ways
            units.append(unit)
    return units


def run_lifetime_unit(
    scale,
    mix: str,
    kind: str = "forecast",
    policy: Optional[str] = None,
    ways: Optional[int] = None,
    sram_ways: int = 4,
    nvm_ways: int = 12,
    cv: float = 0.2,
    l2_kib: Optional[int] = None,
    nvm_latency_factor: float = 1.0,
):
    """One forecast or bound simulation; the campaign-worker entry point.

    Returns a :class:`~repro.metrics.RunRecord` of kind ``bound`` or
    ``forecast`` carrying the registered ``forecast.*`` metrics.
    """
    from ..metrics import RunRecord

    workload = scale.workload(mix)
    if kind == "bound":
        return RunRecord(
            kind="bound",
            meta={"experiment": "fig10a", "mix": mix,
                  "unit": {"kind": "bound", "ways": int(ways)}},
            metrics={"forecast.bound_ipc": bound_ipc(scale, workload, int(ways))},
        )
    if kind != "forecast":
        raise ValueError(f"unknown lifetime unit kind {kind!r}")
    config = scale.system(
        sram_ways=sram_ways,
        nvm_ways=nvm_ways,
        cv=cv,
        l2_kib=l2_kib,
        nvm_latency_factor=nvm_latency_factor,
    )
    name, kwargs = POLICY_SPECS[policy]
    result = forecast_policy(scale, config, make_policy(name, **kwargs), workload)
    return RunRecord(
        kind="forecast",
        meta={"experiment": "fig10a", "mix": mix,
              "unit": {"kind": "forecast", "policy": policy}},
        metrics={
            "forecast.initial_ipc": float(result.initial_ipc),
            "forecast.lifetime_seconds": float(
                result.lifetime_or_horizon_seconds()
            ),
        },
        values={"reached_stop": bool(result.reached_stop)},
    )
