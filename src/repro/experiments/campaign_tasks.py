"""Campaign task registry: every experiment as a list of retryable units.

The monolithic ``run_fig*`` functions are perfect for interactive use
but hostile to fault tolerance: one crash loses hours of completed
work.  This module decomposes each registered experiment into *units*
— the smallest independently-runnable (figure x mix x policy) cells —
so the campaign harness (:mod:`repro.harness`) can execute, retry,
checkpoint and resume them individually.

A unit is a plain JSON-able dict of keyword arguments; running one is
``EXPERIMENTS[name].run(scale, **unit)``, which returns a JSON-able,
*deterministic* result dict (same unit + scale => byte-identical
serialisation — the property the resume machinery checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence

from .bench_cells import enumerate_bench_cell_units, run_bench_cell_unit
from .common import ExperimentScale
from .compressibility import enumerate_fig2_units, run_fig2_unit
from .cpth_sweep import enumerate_cpth_units, run_cpth_unit
from .lifetime import enumerate_lifetime_units, run_lifetime_unit
from .optimal_cpth import enumerate_fig8_units, run_fig8_unit
from .tables import enumerate_table_units, run_table_unit
from .th_tradeoff import enumerate_fig9_units, run_fig9_unit


@dataclass(frozen=True)
class ExperimentDef:
    """One campaign-runnable experiment."""

    name: str
    enumerate_units: Callable[[ExperimentScale], List[dict]]
    run_unit: Callable[..., dict]
    description: str = ""


EXPERIMENTS: Dict[str, ExperimentDef] = {
    d.name: d
    for d in (
        ExperimentDef(
            "tables",
            enumerate_table_units,
            run_table_unit,
            "Tables I-V regenerated from the live code",
        ),
        ExperimentDef(
            "fig2",
            enumerate_fig2_units,
            run_fig2_unit,
            "Fig. 2 per-app compressibility split",
        ),
        ExperimentDef(
            "fig6",
            enumerate_cpth_units,
            run_cpth_unit,
            "Figs. 6/7 CP_th sweep (raw per-run counters)",
        ),
        ExperimentDef(
            "fig8a",
            enumerate_fig8_units,
            run_fig8_unit,
            "Fig. 8a winner distribution vs NVM capacity",
        ),
        ExperimentDef(
            "fig9",
            enumerate_fig9_units,
            run_fig9_unit,
            "Fig. 9 Th tradeoff (raw per-run counters)",
        ),
        ExperimentDef(
            "fig10a",
            enumerate_lifetime_units,
            run_lifetime_unit,
            "Fig. 10a performance-vs-lifetime forecasts",
        ),
        ExperimentDef(
            "bench_cells",
            enumerate_bench_cell_units,
            run_bench_cell_unit,
            "uniform (policy x mix) engine cells for scaling benchmarks",
        ),
    )
}

#: Experiments scheduled by a default ``repro campaign`` run: the
#: paper's figures and tables.  ``bench_cells`` reproduces nothing and
#: is deliberately excluded — it runs only when named explicitly
#: (``--experiments bench_cells`` or ``repro bench --jobs``).
EXPERIMENT_NAMES = tuple(sorted(set(EXPERIMENTS) - {"bench_cells"}))

#: Every campaign-runnable experiment, benchmark cells included.
ALL_EXPERIMENT_NAMES = tuple(sorted(EXPERIMENTS))


def unit_id(unit: Mapping) -> str:
    """Stable, filename-safe identifier of one unit's parameters."""
    return ",".join(f"{key}={unit[key]}" for key in sorted(unit))


@dataclass(frozen=True)
class CampaignTask:
    """One schedulable (experiment, unit) cell of a campaign."""

    experiment: str
    unit: Mapping

    @property
    def task_id(self) -> str:
        return f"{self.experiment}/{unit_id(self.unit)}"

    @property
    def filename(self) -> str:
        return self.task_id.replace("/", "__") + ".json"


def enumerate_campaign_tasks(
    experiments: Sequence[str], scale: ExperimentScale
) -> List[CampaignTask]:
    """All units of the named experiments, in a stable order."""
    tasks: List[CampaignTask] = []
    for name in experiments:
        try:
            define = EXPERIMENTS[name]
        except KeyError:
            raise KeyError(
                f"unknown experiment {name!r}; choose from {EXPERIMENT_NAMES}"
            ) from None
        for unit in define.enumerate_units(scale):
            tasks.append(CampaignTask(name, dict(unit)))
    return tasks


def run_campaign_task(experiment: str, unit: Mapping, scale_name: str) -> dict:
    """Execute one unit (inside a campaign worker process).

    Every unit runner returns a :class:`~repro.metrics.RunRecord`;
    the worker envelope stores its validated JSON payload, so campaign
    results, the memo result cache and the exporters all share the one
    versioned record shape.
    """
    from ..metrics import RunRecord
    from ..workloads.registry import WorkloadRefError, parse_workload_ref
    from .common import get_scale

    scale = get_scale(scale_name)
    record = EXPERIMENTS[experiment].run_unit(scale, **dict(unit))
    if isinstance(record, RunRecord):
        record.meta.setdefault("scale", scale.name)
        ref = dict(unit).get("mix")
        if isinstance(ref, str):
            # Stamp the producing workload family so `repro export`
            # and service health records can report it even for units
            # whose runner predates the registry.
            try:
                family, target = parse_workload_ref(ref)
            except WorkloadRefError:
                pass
            else:
                record.meta.setdefault("workload_family", family)
                record.meta.setdefault("workload_target", target)
        return record.to_json()
    return record
