"""LLC energy comparison across insertion policies (Sec. I/II context).

TAP's original contribution is an LLC *energy* reduction (25 % vs LRU)
achieved by keeping energy-hungry writes out of the NVM part; the
hybrid design itself is motivated by SRAM leakage.  This study runs
each policy on the same workload and reports the LLC energy breakdown,
plus a 16-way SRAM LLC for the leakage comparison.

Expected shape:

* the hybrid's LLC leakage is a fraction of the iso-associativity SRAM
  LLC's (12 of 16 ways leak ~nothing);
* BH spends by far the most NVM write energy; the NVM-aware policies
  cut it by an order of magnitude; compression (BH_CP, CP_SD) reduces
  energy per write.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core import make_policy
from ..timing.energy import EnergyModel, EnergyParams
from .common import ExperimentScale, get_scale, run_one

POLICIES = ("bh", "bh_cp", "lhybrid", "tap", "cp_sd")


def run_energy_study(
    scale: Optional[ExperimentScale] = None,
    mixes: Optional[Sequence[str]] = None,
    policies: Sequence[str] = POLICIES,
    warmup_epochs: float = 10,
    measure_epochs: float = 5,
    params: EnergyParams = EnergyParams(),
) -> List[dict]:
    scale = scale or get_scale()
    mixes = tuple(mixes if mixes is not None else scale.mixes[:2])
    config = scale.system()
    model = EnergyModel(config, params)

    rows: List[dict] = []
    for name in policies:
        totals = {"nvm_write": 0.0, "llc_dyn": 0.0, "leak": 0.0, "llc": 0.0,
                  "total": 0.0}
        ipc = 0.0
        for mix in mixes:
            res = run_one(config, make_policy(name), scale.workload(mix),
                          warmup_epochs, measure_epochs)
            breakdown = model.evaluate(res.stats, res.seconds)
            totals["nvm_write"] += breakdown.llc_nvm_write
            totals["llc_dyn"] += breakdown.llc_dynamic
            totals["leak"] += breakdown.sram_leakage + breakdown.nvm_leakage
            totals["llc"] += breakdown.llc_total
            totals["total"] += breakdown.total
            ipc += res.mean_ipc / len(mixes)
        rows.append(
            {
                "policy": name,
                "ipc": ipc,
                "nvm_write_nj": totals["nvm_write"],
                "llc_dynamic_nj": totals["llc_dyn"],
                "llc_leakage_nj": totals["leak"],
                "llc_total_nj": totals["llc"],
                "total_nj": totals["total"],
            }
        )

    # iso-associativity SRAM LLC: the leakage bound the hybrid attacks
    sram_cfg = scale.system(sram_ways=16, nvm_ways=0)
    sram_model = EnergyModel(sram_cfg, params)
    totals = {"llc": 0.0, "leak": 0.0, "dyn": 0.0, "total": 0.0}
    ipc = 0.0
    for mix in mixes:
        res = run_one(sram_cfg, make_policy("sram"), scale.workload(mix),
                      warmup_epochs, measure_epochs)
        breakdown = sram_model.evaluate(res.stats, res.seconds)
        totals["llc"] += breakdown.llc_total
        totals["leak"] += breakdown.sram_leakage + breakdown.nvm_leakage
        totals["dyn"] += breakdown.llc_dynamic
        totals["total"] += breakdown.total
        ipc += res.mean_ipc / len(mixes)
    rows.append(
        {
            "policy": "sram16 (bound)",
            "ipc": ipc,
            "nvm_write_nj": 0.0,
            "llc_dynamic_nj": totals["dyn"],
            "llc_leakage_nj": totals["leak"],
            "llc_total_nj": totals["llc"],
            "total_nj": totals["total"],
        }
    )
    return rows
