"""Tables I-V — encoding table, placement rules, policy taxonomy, spec.

These "experiments" regenerate the paper's tables from the live code:
Table I from the encoding registry, Table II by querying CA_RWR's
placement function, Table III from the policy registry taxonomy, and
Tables IV/V from the default configuration and mix definitions.
"""

from __future__ import annotations

from typing import List

from ..cache.block import ReuseClass
from ..cache.cacheset import NVM, SRAM, CacheSet
from ..compression.encodings import ALL_ENCODINGS, ecb_size
from ..config import SystemConfig
from ..core import make_policy
from ..core.policy import FillContext
from ..workloads.mixes import MIXES


def table1_rows() -> List[dict]:
    """Table I — the modified-BDI compression encodings."""
    rows = []
    for enc in ALL_ENCODINGS:
        rows.append(
            {
                "encoding": enc.name,
                "base": enc.base_bytes or "-",
                "delta": enc.delta_bytes or "-",
                "size": enc.size,
                "ecb": ecb_size(enc.size),
                "class": "HCR" if enc.is_hcr else ("LCR" if enc.is_compressed else "-"),
            }
        )
    return rows


def table2_rows(cpth: int = 37) -> List[dict]:
    """Table II — CA_RWR placement decisions, queried from the policy."""
    policy = make_policy("ca_rwr", cpth=cpth)

    class _FakeLLC:
        n_sets = 1

        @staticmethod
        def capacity_of(cache_set, way):
            return 64

    policy.bind(_FakeLLC())
    cache_set = CacheSet(0, 4, 12)
    names = {SRAM: "SRAM", NVM: "NVM"}
    rows = []
    for reuse in (ReuseClass.NONE, ReuseClass.READ, ReuseClass.WRITE):
        for size_label, csize in (("small (<=CP_th)", cpth), ("big (>CP_th)", cpth + 1)):
            ctx = FillContext(0, False, csize, ecb_size(csize), reuse, 0)
            parts = policy.placement(cache_set, ctx)
            rows.append(
                {
                    "reuse": reuse.name.lower(),
                    "compressed_size": size_label,
                    "target": names[parts[0]],
                    "fallback": names[parts[1]] if len(parts) > 1 else "-",
                }
            )
    return rows


def table3_rows() -> List[dict]:
    """Table III — taxonomy of the evaluated insertion policies."""
    rows = []
    for name in ("bh", "bh_cp", "lhybrid", "tap", "cp_sd", "cp_sd_th"):
        rows.append(make_policy(name).taxonomy())
    return rows


def table4_rows(config: SystemConfig = None) -> List[dict]:
    """Table IV — system specification actually used by the simulator."""
    config = config or SystemConfig()
    lat = config.latency
    return [
        {"component": "cores", "value": f"{config.cores.n_cores} OoO @ {lat.cpu_freq_hz/1e9:g} GHz"},
        {"component": "L1D", "value": f"{config.l1.size_bytes//1024} KiB, {config.l1.ways}-way, {lat.l1_hit}-cycle"},
        {"component": "L2", "value": f"{config.l2.size_bytes//1024} KiB, {config.l2.ways}-way, {lat.l2_hit}-cycle"},
        {"component": "LLC SRAM", "value": f"{config.llc.sram_ways} ways, {lat.llc_sram_load}-cycle load-use"},
        {"component": "LLC NVM", "value": (
            f"{config.llc.nvm_ways} ways, {lat.llc_nvm_load}+{lat.llc_nvm_extra}-cycle load-use, "
            f"{lat.llc_write}-cycle write")},
        {"component": "LLC sets/banks", "value": f"{config.llc.n_sets} sets, {config.llc.n_banks} banks"},
        {"component": "endurance", "value": f"mean {config.endurance.mean:g} writes, cv {config.endurance.cv}"},
        {"component": "memory", "value": f"{lat.memory}-cycle"},
    ]


def table5_rows() -> List[dict]:
    """Table V — the SPEC CPU 2006/2017 mixes."""
    return [
        {"mix": mix, "apps": " ".join(apps)} for mix, apps in MIXES.items()
    ]


# ----------------------------------------------------------------------
# Campaign units — one retryable task per table.

TABLE_RUNNERS = {
    "table1": table1_rows,
    "table2": table2_rows,
    "table3": table3_rows,
    "table4": table4_rows,
    "table5": table5_rows,
}


def enumerate_table_units(scale) -> List[dict]:
    """One campaign unit per paper table (``scale`` is irrelevant)."""
    return [{"table": name} for name in sorted(TABLE_RUNNERS)]


def run_table_unit(scale, table: str):
    """Regenerate one table; the campaign-worker entry point.

    Returns a :class:`~repro.metrics.RunRecord` of kind ``table``
    whose rows live in ``values["rows"]``.
    """
    from ..metrics import RunRecord

    return RunRecord(
        kind="table",
        meta={"experiment": "tables", "table": table},
        values={"rows": TABLE_RUNNERS[table]()},
    )
