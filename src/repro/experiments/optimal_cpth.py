"""Fig. 8 — which ``CP_th`` wins each epoch, vs NVM capacity and mix.

For every candidate threshold the same workload runs under CA_RWR with
that fixed ``CP_th``; per epoch, the winner is the threshold with the
most LLC hits.  Fig. 8a aggregates the winner distribution across
mixes while the NVM capacity degrades from 100 % towards 50 %; Fig. 8b
shows the per-mix distribution at full capacity.

Expected shape: at full capacity large thresholds (58/64) win most
epochs but not all (~30 % of epochs prefer smaller values); as
capacity shrinks, high-capacity frames become scarce and the optimum
drifts to smaller thresholds — the motivation for Set Dueling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..compression.encodings import CPTH_LADDER
from ..core import make_policy
from .common import ExperimentScale, aged_capacities, get_scale, run_one


@dataclass
class WinnerDistribution:
    """Fraction of epochs each CP_th value was hit-optimal."""

    label: str
    shares: Dict[int, float]

    def dominant(self) -> int:
        return max(self.shares, key=lambda k: self.shares[k])

    def share_below(self, cpth: int) -> float:
        return sum(v for k, v in self.shares.items() if k < cpth)


def _epoch_hits(result) -> List[int]:
    return [e.hits for e in result.epochs if e.after_warmup]


def winner_distribution(
    label: str,
    config,
    workload,
    capacities,
    cpth_values: Sequence[int],
    warmup_epochs: float,
    measure_epochs: float,
) -> WinnerDistribution:
    """Per-epoch argmax over fixed-CP_th CA_RWR runs of one workload."""
    per_cpth: Dict[int, List[int]] = {}
    for cpth in cpth_values:
        res = run_one(
            config,
            make_policy("ca_rwr", cpth=cpth),
            workload,
            warmup_epochs,
            measure_epochs,
            capacities=capacities,
        )
        per_cpth[cpth] = _epoch_hits(res)
    n_epochs = min(len(v) for v in per_cpth.values())
    counts = {cpth: 0 for cpth in cpth_values}
    for e in range(n_epochs):
        winner = max(cpth_values, key=lambda c: (per_cpth[c][e], c))
        counts[winner] += 1
    total = max(1, n_epochs)
    return WinnerDistribution(
        label=label, shares={c: counts[c] / total for c in cpth_values}
    )


def run_fig8a(
    scale: Optional[ExperimentScale] = None,
    capacities_pct: Sequence[int] = (100, 90, 80, 70, 60, 50),
    mixes: Optional[Sequence[str]] = None,
    cpth_values: Sequence[int] = CPTH_LADDER,
    warmup_epochs: float = 5,
    measure_epochs: float = 6,
) -> List[WinnerDistribution]:
    """Winner distribution vs NVM effective capacity (mix-aggregated)."""
    scale = scale or get_scale()
    mixes = tuple(mixes if mixes is not None else scale.mixes)
    config = scale.system()
    out: List[WinnerDistribution] = []
    for pct in capacities_pct:
        caps = aged_capacities(config, pct / 100.0)
        shares = {c: 0.0 for c in cpth_values}
        for mix in mixes:
            dist = winner_distribution(
                f"{pct}%/{mix}",
                config,
                scale.workload(mix),
                caps,
                cpth_values,
                warmup_epochs,
                measure_epochs,
            )
            for c in cpth_values:
                shares[c] += dist.shares[c] / len(mixes)
        out.append(WinnerDistribution(label=f"{pct}%", shares=shares))
    return out


def run_fig8b(
    scale: Optional[ExperimentScale] = None,
    mixes: Optional[Sequence[str]] = None,
    cpth_values: Sequence[int] = CPTH_LADDER,
    warmup_epochs: float = 5,
    measure_epochs: float = 6,
) -> List[WinnerDistribution]:
    """Per-mix winner distribution at 100 % NVM capacity."""
    scale = scale or get_scale()
    mixes = tuple(mixes if mixes is not None else scale.mixes)
    config = scale.system()
    return [
        winner_distribution(
            mix,
            config,
            scale.workload(mix),
            None,
            cpth_values,
            warmup_epochs,
            measure_epochs,
        )
        for mix in mixes
    ]


# ----------------------------------------------------------------------
# Campaign units — one retryable task per (capacity, mix) winner
# distribution (each unit internally sweeps the CP_th ladder).

def enumerate_fig8_units(
    scale,
    capacities_pct: Sequence[int] = (100, 90, 80, 70, 60, 50),
    mixes: Optional[Sequence[str]] = None,
) -> List[dict]:
    mixes = tuple(mixes if mixes is not None else scale.mixes)
    return [
        {"mix": mix, "capacity_pct": int(pct)}
        for pct in capacities_pct
        for mix in mixes
    ]


def run_fig8_unit(
    scale,
    mix: str,
    capacity_pct: int = 100,
    cpth_values: Sequence[int] = CPTH_LADDER,
    warmup_epochs: float = 5,
    measure_epochs: float = 6,
):
    """One winner-distribution cell; the campaign-worker entry point.

    Returns a :class:`~repro.metrics.RunRecord` with the per-CP_th
    winner shares in ``values["shares"]`` (dynamic keys, so they live
    in ``values`` rather than the registered-metric namespace).
    """
    from ..metrics import RunRecord

    config = scale.system()
    caps = (
        aged_capacities(config, capacity_pct / 100.0)
        if capacity_pct < 100
        else None
    )
    dist = winner_distribution(
        f"{capacity_pct}%/{mix}",
        config,
        scale.workload(mix),
        caps,
        cpth_values,
        warmup_epochs,
        measure_epochs,
    )
    return RunRecord(
        kind="unit",
        meta={"experiment": "fig8a", "mix": mix,
              "capacity_pct": capacity_pct},
        values={"shares": {str(cpth): share
                           for cpth, share in dist.shares.items()}},
    )
