"""Fig. 9 — hits vs NVM bytes written for the CP_SD_Th rule.

Sweeps the hit-loss threshold ``Th`` of Eq. (1) at ``Tw = 5 %`` for
NVM effective capacities of 100/90/80 %, everything normalised to BH
at 100 % capacity.  Expected shape: raising ``Th`` trades a small
number of hits for a much larger reduction in NVM bytes written, and
the write reduction grows as the cache loses capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core import make_policy
from .common import ExperimentScale, aged_capacities, get_scale, run_one


@dataclass(frozen=True)
class TradeoffPoint:
    th: float
    capacity_pct: int
    hits_norm: float          # vs BH at 100 % capacity
    nvm_bytes_norm: float     # vs BH at 100 % capacity


def run_fig9(
    scale: Optional[ExperimentScale] = None,
    th_values: Sequence[float] = (0.0, 2.0, 4.0, 6.0, 8.0),
    capacities_pct: Sequence[int] = (100, 90, 80),
    tw: float = 5.0,
    mixes: Optional[Sequence[str]] = None,
    warmup_epochs: float = 6,
    measure_epochs: float = 6,
) -> List[TradeoffPoint]:
    scale = scale or get_scale()
    mixes = tuple(mixes if mixes is not None else scale.mixes)
    config = scale.system()

    # BH baseline at 100 % capacity, per mix
    base = {}
    for mix in mixes:
        res = run_one(
            config, make_policy("bh"), scale.workload(mix), warmup_epochs, measure_epochs
        )
        base[mix] = (max(1, res.llc_hits), max(1, res.nvm_bytes_written))

    points: List[TradeoffPoint] = []
    for pct in capacities_pct:
        caps = aged_capacities(config, pct / 100.0) if pct < 100 else None
        for th in th_values:
            hit_norms: List[float] = []
            byte_norms: List[float] = []
            for mix in mixes:
                policy = make_policy("cp_sd_th", th=th, tw=tw)
                res = run_one(
                    config,
                    policy,
                    scale.workload(mix),
                    warmup_epochs,
                    measure_epochs,
                    capacities=caps,
                )
                hit_norms.append(res.llc_hits / base[mix][0])
                byte_norms.append(res.nvm_bytes_written / base[mix][1])
            points.append(
                TradeoffPoint(
                    th=th,
                    capacity_pct=pct,
                    hits_norm=sum(hit_norms) / len(hit_norms),
                    nvm_bytes_norm=sum(byte_norms) / len(byte_norms),
                )
            )
    return points


# ----------------------------------------------------------------------
# Campaign units — one retryable task per (mix, Th, capacity) point
# plus the per-mix BH baseline; normalisation happens at aggregation.

def enumerate_fig9_units(
    scale,
    th_values: Sequence[float] = (0.0, 2.0, 4.0, 6.0, 8.0),
    capacities_pct: Sequence[int] = (100, 90, 80),
    mixes: Optional[Sequence[str]] = None,
) -> List[dict]:
    units: List[dict] = []
    for mix in tuple(mixes if mixes is not None else scale.mixes):
        units.append({"mix": mix, "policy": "bh", "capacity_pct": 100})
        for pct in capacities_pct:
            for th in th_values:
                units.append(
                    {
                        "mix": mix,
                        "policy": "cp_sd_th",
                        "th": float(th),
                        "capacity_pct": int(pct),
                    }
                )
    return units


def run_fig9_unit(
    scale,
    mix: str,
    policy: str = "cp_sd_th",
    th: Optional[float] = None,
    tw: float = 5.0,
    capacity_pct: int = 100,
    warmup_epochs: float = 6,
    measure_epochs: float = 6,
):
    """One Fig. 9 simulation; the campaign-worker entry point.

    Returns the run's :class:`~repro.metrics.RunRecord`.
    """
    config = scale.system()
    caps = aged_capacities(config, capacity_pct / 100.0) if capacity_pct < 100 else None
    kwargs = {} if policy == "bh" else {"th": float(th), "tw": tw}
    record = run_one(
        config,
        make_policy(policy, **kwargs),
        scale.workload(mix),
        warmup_epochs,
        measure_epochs,
        capacities=caps,
    )
    record.meta.update(
        {
            "experiment": "fig9",
            "mix": mix,
            "unit_policy": policy,
            "th": th,
            "tw": tw,
            "capacity_pct": capacity_pct,
        }
    )
    return record
