"""Ablations of the design choices the paper makes along the way.

Three claims from the text get their own experiments:

* **Epoch size** (Sec. IV-C): "we perform these experiments varying
  the epoch size and our evaluation shows that 2M cycles achieves the
  best Set Dueling performance" — sweep the epoch length and measure
  CP_SD's hits.
* **SRAM->NVM migration** (Sec. IV-B): read-reused SRAM victims are
  migrated to NVM instead of being dropped — compare CA_RWR with the
  migration disabled.
* **Compressor orthogonality** (Sec. II-B): "our proposed policies are
  orthogonal to the compression mechanism" — run CP_SD with FPC
  instead of modified BDI on identical payloads.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from ..compression.fpc import FPCCompressor
from ..core import make_policy
from ..engine import Simulation
from .common import ExperimentScale, get_scale, run_one


def run_epoch_size_sweep(
    scale: Optional[ExperimentScale] = None,
    multipliers: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    mixes: Optional[Sequence[str]] = None,
    total_epochs_at_1x: float = 16,
    warmup_epochs_at_1x: float = 10,
) -> List[dict]:
    """CP_SD quality vs Set-Dueling epoch length (around the scaled 2M).

    All runs cover the same number of *cycles*; only the election
    period changes.  Expected: a broad optimum around the paper's
    choice — much shorter epochs elect on noise, much longer ones
    adapt too slowly.
    """
    scale = scale or get_scale()
    mixes = tuple(mixes if mixes is not None else scale.mixes[:2])
    base_cfg = scale.system()
    base_epoch = base_cfg.dueling.epoch_cycles
    total = total_epochs_at_1x * base_epoch
    warmup = warmup_epochs_at_1x * base_epoch

    rows: List[dict] = []
    for mult in multipliers:
        cfg = replace(
            base_cfg,
            dueling=replace(base_cfg.dueling, epoch_cycles=int(base_epoch * mult)),
        )
        hits = 0
        nvm_bytes = 0
        for mix in mixes:
            sim = Simulation(cfg, make_policy("cp_sd"), scale.workload(mix))
            res = sim.run(cycles=total, warmup_cycles=warmup)
            hits += res.llc_hits
            nvm_bytes += res.nvm_bytes_written
        rows.append(
            {
                "epoch_multiplier": mult,
                "epoch_cycles": int(base_epoch * mult),
                "hits": hits,
                "nvm_bytes": nvm_bytes,
            }
        )
    best = max(r["hits"] for r in rows)
    for r in rows:
        r["hits_norm"] = r["hits"] / best
    return rows


def run_migration_ablation(
    scale: Optional[ExperimentScale] = None,
    mixes: Optional[Sequence[str]] = None,
    cpth: int = 58,
    warmup_epochs: float = 10,
    measure_epochs: float = 5,
) -> List[dict]:
    """CA_RWR with vs without the read-reuse SRAM->NVM migration."""
    scale = scale or get_scale()
    mixes = tuple(mixes if mixes is not None else scale.mixes[:2])
    config = scale.system()
    rows: List[dict] = []
    for migrate in (True, False):
        hits = ipc = bytes_ = migrations = 0
        for mix in mixes:
            policy = make_policy("ca_rwr", cpth=cpth, migrate_on_eviction=migrate)
            res = run_one(config, policy, scale.workload(mix), warmup_epochs,
                          measure_epochs)
            hits += res.llc_hits
            ipc += res.mean_ipc / len(mixes)
            bytes_ += res.nvm_bytes_written
            migrations += res.stats.llc.migrations_to_nvm
        rows.append(
            {
                "migration": "on" if migrate else "off",
                "hits": hits,
                "ipc": ipc,
                "nvm_bytes": bytes_,
                "migrations": migrations,
            }
        )
    return rows


def run_compressor_ablation(
    scale: Optional[ExperimentScale] = None,
    mixes: Optional[Sequence[str]] = None,
    warmup_epochs: float = 10,
    measure_epochs: float = 5,
) -> List[dict]:
    """CP_SD under modified BDI vs FPC on identical payloads."""
    scale = scale or get_scale()
    mixes = tuple(mixes if mixes is not None else scale.mixes[:2])
    config = scale.system()
    epoch = config.dueling.epoch_cycles
    rows: List[dict] = []
    for comp_name in ("bdi", "fpc"):
        hits = ipc = bytes_ = 0
        for mix in mixes:
            workload = scale.workload(mix)
            size_fn = (
                workload.data_model.size_fn
                if comp_name == "bdi"
                else workload.data_model.size_fn_for(FPCCompressor())
            )
            sim = Simulation(config, make_policy("cp_sd"), workload, size_fn=size_fn)
            res = sim.run(
                cycles=epoch * (warmup_epochs + measure_epochs),
                warmup_cycles=epoch * warmup_epochs,
            )
            hits += res.llc_hits
            ipc += res.mean_ipc / len(mixes)
            bytes_ += res.nvm_bytes_written
        rows.append(
            {"compressor": comp_name, "hits": hits, "ipc": ipc, "nvm_bytes": bytes_}
        )
    return rows
