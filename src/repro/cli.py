"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``      — registered policies, mixes, applications, scales
``workloads`` — workload families/targets with metadata, or
                ``--import`` an external trace as a new target
``simulate``  — run one mix under one policy, print the statistics
``forecast``  — lifetime forecast for one or more policies on a mix
``figure``    — regenerate one of the paper's tables/figures
``ablation``  — run one of the design-choice ablations
``campaign``  — fault-tolerant multi-experiment run with resume
``bench``     — engine speed benchmark with baseline regression gate
``export``    — convert RunRecord artefacts to json/csv/jsonl/prom,
                or ``--check`` committed artefacts for schema drift
``doctor``    — audit artefact integrity (envelopes, checksums,
                schemas); ``--repair`` quarantines, ``--strict`` gates
``analytical``— validate the closed-form estimator against the
                committed reference matrix (``--regenerate`` re-runs
                and re-commits it)
``explore``   — successive-halving design-space sweep: analytical
                screening rungs, simulated confirmation, Pareto
                frontier; crash-consistent artefacts with ``--resume``
``serve``     — run the campaign service: accepts submitted sweeps,
                executes them (locally or across shards), streams
                telemetry, serves Prometheus ``/metrics``
``serve-worker`` — run one shard: executes campaign task payloads for
                a controller over a socket
``submit``    — enqueue a sweep on a running service (async)
``status``    — job ledger of a service, or the shard/task summary of
                a campaign directory
``watch``     — stream a job's per-unit progress events live

Unknown mix/policy/scale/experiment names exit with code 2 and a
one-line "did you mean" suggestion instead of a traceback.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from typing import List, Optional, Sequence

from .core import make_policy, registered_policies
from .engine import Simulation
from .experiments import (
    EXPERIMENT_NAMES,
    SCALE_NAMES,
    format_records,
    get_scale,
    run_compressor_ablation,
    run_cpth_sweep,
    run_energy_study,
    run_epoch_size_sweep,
    run_fig2,
    run_fig8a,
    run_fig9,
    run_fig11c_equal_cost,
    run_lifetime_study,
    run_migration_ablation,
    run_wear_leveling_study,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)
from .forecast import SECONDS_PER_MONTH, Forecaster
from .workloads import APP_NAMES, MIX_NAMES


class UsageError(Exception):
    """A bad command-line value; printed one-line, exits with code 2."""


def _did_you_mean(value: str, choices: Sequence[str]) -> str:
    matches = difflib.get_close_matches(value, list(choices), n=1, cutoff=0.4)
    return f"; did you mean {matches[0]!r}?" if matches else ""


def _check_choice(kind: str, value: str, choices: Sequence[str]) -> str:
    """Validate a named choice or raise a one-line :class:`UsageError`."""
    if value not in choices:
        raise UsageError(
            f"unknown {kind} {value!r}{_did_you_mean(value, choices)} "
            f"(choose from: {', '.join(sorted(choices))})"
        )
    return value


def _resolve_scale(name: Optional[str]):
    if name is not None:
        _check_choice("scale", name, SCALE_NAMES)
    try:
        return get_scale(name)
    except KeyError:
        # env-var REPRO_SCALE may also hold a typo
        import os

        value = os.environ.get("REPRO_SCALE", "default")
        raise UsageError(
            f"unknown scale {value!r} (from REPRO_SCALE)"
            f"{_did_you_mean(value, SCALE_NAMES)}"
        ) from None


def _policy_args(value: str):
    """Parse ``name`` or ``name:key=val,key=val`` policy specs."""
    if ":" not in value:
        return value, {}
    name, _, raw = value.partition(":")
    kwargs = {}
    for pair in raw.split(","):
        key, _, val = pair.partition("=")
        try:
            kwargs[key] = int(val)
        except ValueError:
            kwargs[key] = float(val)
    return name, kwargs


def _make_policy_checked(spec: str):
    name, kwargs = _policy_args(spec)
    _check_choice("policy", name, registered_policies())
    return name, make_policy(name, **kwargs)


def _check_backend(value: Optional[str]) -> Optional[str]:
    """Validate a ``--backend`` value (None = flag/env/default chain)."""
    if value is None:
        return None
    from .engine_backends import backend_names

    return _check_choice("backend", value, backend_names())


def _check_workload_ref(value: str) -> str:
    """Validate a workload reference; returns the normalized form.

    Accepts bare mix names (``mix1``) and ``family:target`` refs;
    unknown references exit 2 with a did-you-mean suggestion drawn
    from the registry, matching every other CLI choice error.
    """
    from .workloads.registry import (
        DEFAULT_FAMILY,
        WorkloadRefError,
        normalize_workload_ref,
        workload_refs,
    )

    try:
        return normalize_workload_ref(value)
    except WorkloadRefError as exc:
        prefix = DEFAULT_FAMILY + ":"
        choices = [
            ref[len(prefix):] if ref.startswith(prefix) else ref
            for ref in (exc.choices or workload_refs())
        ]
        raise UsageError(
            f"unknown workload {value!r}{_did_you_mean(value, choices)} "
            "(list with: repro workloads)"
        ) from None


def _check_workload_list(spec: str) -> tuple:
    """Validate a comma-separated ``--workloads`` flag value."""
    refs = tuple(
        _check_workload_ref(ref.strip())
        for ref in spec.split(",")
        if ref.strip()
    )
    if not refs:
        raise UsageError("--workloads needs at least one reference")
    return refs


def cmd_list(args: argparse.Namespace) -> int:
    from .workloads.registry import family_names

    print("policies   :", ", ".join(registered_policies()))
    print("mixes      :", ", ".join(MIX_NAMES))
    print("families   :", ", ".join(family_names()), " (repro workloads)")
    print("apps       :", ", ".join(APP_NAMES))
    print("scales     :", ", ".join(SCALE_NAMES), " (env REPRO_SCALE)")
    print("experiments:", ", ".join(EXPERIMENT_NAMES), " (campaign)")
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from .workloads.registry import family_names, get_family

    if args.import_source:
        from .workloads.external import import_trace
        from .workloads.traceio import TraceFormatError

        if not args.name:
            raise UsageError("--import needs --name NAME for the new target")
        try:
            target_dir = import_trace(
                args.import_source,
                args.name,
                root=args.root,
                cores=args.cores,
                hcr=args.hcr,
                lcr=args.lcr,
                addr_kind=args.addr_kind,
                seed=args.seed,
            )
        except ValueError as exc:
            raise UsageError(str(exc)) from None
        except (OSError, TraceFormatError) as exc:
            print(f"repro: import failed: {exc}", file=sys.stderr)
            return 1
        spec = get_family("external").target_spec(args.name)
        print(f"imported external:{args.name} -> {target_dir}")
        print(
            f"  cores={spec.cores}  footprint={spec.footprint_blocks} blocks"
            f"  hcr={spec.hcr_fraction:.2f} lcr={spec.lcr_fraction:.2f}"
        )
        print(f"  run with: repro simulate --mix external:{args.name}")
        return 0

    names = family_names()
    if args.family:
        _check_choice("family", args.family, names)
        names = (args.family,)
    rows = []
    for family_name in names:
        family = get_family(family_name)
        targets = family.targets()
        note = "" if targets else "  (none imported; see workloads --import)"
        print(f"{family_name}: {family.description}{note}")
        for target in targets:
            spec = family.target_spec(target)
            rows.append(
                {
                    "workload": spec.ref,
                    "cores": spec.cores,
                    "footprint_blocks": spec.footprint_blocks,
                    "hcr": f"{spec.hcr_fraction:.2f}",
                    "lcr": f"{spec.lcr_fraction:.2f}",
                    "incomp": f"{spec.incompressible_fraction:.2f}",
                    "scaling": "scalable" if spec.scalable else "fixed",
                    "description": spec.description,
                }
            )
    if rows:
        print()
        print(format_records(rows, "workload targets"))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    scale = _resolve_scale(args.scale)
    config = scale.system()
    args.mix = _check_workload_ref(args.mix)
    name, policy = _make_policy_checked(args.policy)
    workload = scale.workload(args.mix, seed=args.seed)
    sim = Simulation(config, policy, workload, backend=_check_backend(args.backend))
    epoch = config.dueling.epoch_cycles
    cycles = epoch * (args.warmup_epochs + args.epochs)
    warmup = epoch * args.warmup_epochs
    if args.profile:
        import cProfile
        from pathlib import Path

        out = Path(args.profile)
        out.mkdir(parents=True, exist_ok=True)
        profiler = cProfile.Profile()
        result = profiler.runcall(sim.run, cycles=cycles, warmup_cycles=warmup)
        # The backend is part of the label: a reference profile and a
        # vectorized profile of the same case are different artefacts.
        pstats_path = out / f"simulate_{args.mix}_{name}_{sim.backend_name}.pstats"
        profiler.dump_stats(pstats_path)
        print(f"profile: {pstats_path}")
    else:
        result = sim.run(cycles=cycles, warmup_cycles=warmup)
    llc = result.stats.llc
    rows = [
        {"metric": "mean IPC", "value": result.mean_ipc},
        {"metric": "LLC hit rate", "value": llc.hit_rate},
        {"metric": "LLC accesses", "value": llc.accesses},
        {"metric": "hits SRAM / NVM", "value": f"{llc.hits_sram} / {llc.hits_nvm}"},
        {"metric": "fills SRAM / NVM", "value": f"{llc.fills_sram} / {llc.fills_nvm}"},
        {"metric": "NVM bytes written", "value": llc.nvm_bytes_written},
        {"metric": "migrations to NVM", "value": llc.migrations_to_nvm},
        {"metric": "memory writebacks", "value": llc.writebacks_to_memory},
    ]
    print(format_records(rows, f"{name} on {args.mix} ({scale.name} scale)"))
    return 0


def cmd_forecast(args: argparse.Namespace) -> int:
    scale = _resolve_scale(args.scale)
    config = scale.system()
    args.mix = _check_workload_ref(args.mix)
    epoch = config.dueling.epoch_cycles
    rows = []
    baseline_seconds = None
    for spec in args.policies:
        _, policy = _make_policy_checked(spec)
        forecaster = Forecaster(
            config,
            policy,
            scale.workload(args.mix, seed=args.seed),
            phase_cycles=epoch * 3,
            initial_warmup_cycles=epoch * 10,
            rewarm_cycles=epoch * 0.75,
            capacity_step=0.1,
            max_steps=scale.forecast_max_steps,
        )
        result = forecaster.run()
        seconds = result.lifetime_or_horizon_seconds()
        if baseline_seconds is None:
            baseline_seconds = seconds
        rows.append(
            {
                "policy": spec,
                "initial_ipc": result.initial_ipc,
                "lifetime_months": seconds / SECONDS_PER_MONTH,
                "vs_first": seconds / baseline_seconds,
                "hit_50pct": "yes" if result.reached_stop else "plateau",
            }
        )
    print(format_records(rows, f"Lifetime forecast on {args.mix}"))
    return 0


_FIGURES = {
    "table1": lambda scale: format_records(table1_rows(), "Table I"),
    "table2": lambda scale: format_records(table2_rows(), "Table II"),
    "table3": lambda scale: format_records(table3_rows(), "Table III"),
    "table4": lambda scale: format_records(table4_rows(), "Table IV"),
    "table5": lambda scale: format_records(table5_rows(), "Table V"),
    "fig2": lambda scale: format_records(
        [r.__dict__ for r in run_fig2(n_blocks=256)], "Fig. 2"
    ),
    "fig6": lambda scale: format_records(run_cpth_sweep(scale).rows(), "Figs. 6/7"),
    "fig8a": lambda scale: format_records(
        [{"config": d.label, **{str(k): v for k, v in d.shares.items()}}
         for d in run_fig8a(scale, capacities_pct=(100, 80, 60, 50),
                            mixes=scale.mixes[:2])],
        "Fig. 8a",
    ),
    "fig9": lambda scale: format_records(
        [p.__dict__ for p in run_fig9(scale, th_values=(0.0, 4.0, 8.0),
                                      capacities_pct=(100, 80),
                                      mixes=scale.mixes[:2])],
        "Fig. 9",
    ),
    "fig10a": lambda scale: format_records(
        run_lifetime_study(scale, label="fig10a").rows(), "Fig. 10a"
    ),
    "fig11c": lambda scale: format_records(
        run_fig11c_equal_cost(scale, mixes=scale.mixes[:2]), "Fig. 11c"
    ),
}

_ABLATIONS = {
    "epoch": run_epoch_size_sweep,
    "migration": run_migration_ablation,
    "compressor": run_compressor_ablation,
    "wear_leveling": lambda scale: run_wear_leveling_study(),
    "energy": run_energy_study,
}


def cmd_figure(args: argparse.Namespace) -> int:
    scale = _resolve_scale(args.scale)
    _check_choice("figure", args.id, tuple(_FIGURES))
    print(_FIGURES[args.id](scale))
    return 0


def cmd_ablation(args: argparse.Namespace) -> int:
    scale = _resolve_scale(args.scale)
    _check_choice("ablation", args.id, tuple(_ABLATIONS))
    print(format_records(_ABLATIONS[args.id](scale), f"ablation: {args.id}"))
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from .harness import (
        CampaignConfigError,
        CampaignRunner,
        CampaignSettings,
        ChaosSpecError,
        parse_chaos_spec,
    )

    chaos = None
    if args.chaos:
        try:
            chaos = parse_chaos_spec(args.chaos, seed=args.seed)
        except ChaosSpecError as exc:
            raise UsageError(str(exc)) from None

    shards = None
    if args.shards:
        from .service import parse_endpoint

        shards = [s.strip() for s in args.shards.split(",") if s.strip()]
        for spec in shards:
            try:
                parse_endpoint(spec)
            except ValueError as exc:
                raise UsageError(str(exc)) from None
        if args.isolate_tasks:
            raise UsageError("--shards and --isolate-tasks are exclusive")

    settings = CampaignSettings(
        jobs=args.jobs,
        task_timeout=args.timeout,
        retries=args.retries,
        backoff_base=args.backoff,
        chaos=chaos,
        profile_dir=args.profile,
        isolate_tasks=args.isolate_tasks,
        use_result_cache=not args.no_result_cache,
        result_cache_dir=args.result_cache,
        shards=shards,
    )

    if args.resume:
        if args.workloads:
            raise UsageError(
                "--workloads applies at creation; a resumed campaign "
                "reuses the workload list recorded in its manifest"
            )
        directory, resume = args.resume, True
        scale_name = None
        experiments: Sequence[str] = ()
        workloads = None
    else:
        if not args.out:
            raise UsageError("campaign needs --out DIR (or --resume DIR)")
        directory, resume = args.out, False
        scale_name = _resolve_scale(args.scale).name
        from .experiments import ALL_EXPERIMENT_NAMES

        experiments = [e.strip() for e in args.experiments.split(",") if e.strip()]
        for name in experiments:
            _check_choice("experiment", name, ALL_EXPERIMENT_NAMES)
        workloads = (
            _check_workload_list(args.workloads) if args.workloads else None
        )

    # Workers inherit the environment, so pointing the trace cache at
    # the campaign directory lets every task share materialized traces.
    import os
    from pathlib import Path

    from .config import REPRO_BACKEND_ENV
    from .memo.results import RESULT_CACHE_ENV
    from .workloads.cache import TRACE_CACHE_ENV

    # The overrides live only for this campaign: embedding processes
    # (the service server, the test suite) call main() repeatedly, and
    # a leaked REPRO_RESULT_CACHE pointing at a dead directory would
    # silently redirect every later campaign's cache.
    saved_env = {
        key: os.environ.get(key)
        for key in (REPRO_BACKEND_ENV, TRACE_CACHE_ENV, RESULT_CACHE_ENV)
    }

    # Same inheritance carries the engine backend to every worker.
    if args.backend is not None:
        os.environ[REPRO_BACKEND_ENV] = _check_backend(args.backend)

    os.environ.setdefault(TRACE_CACHE_ENV, str(Path(directory) / "trace_cache"))
    # Same idea for completed unit results: default the result cache to
    # a sibling of the trace cache so re-running or widening a campaign
    # at the same path re-pays only never-computed units.
    if not args.no_result_cache:
        os.environ.setdefault(
            RESULT_CACHE_ENV, str(Path(directory) / "result_cache")
        )

    try:
        try:
            runner = CampaignRunner(
                directory,
                scale=scale_name or "default",
                experiments=experiments,
                settings=settings,
                resume=resume,
                workloads=workloads,
                progress=lambda message: print(message),
            )
        except CampaignConfigError as exc:
            raise UsageError(str(exc)) from None
        from .service import ShardError

        try:
            report = runner.run()
        except ShardError as exc:
            print(f"campaign ABORTED: {exc}", file=sys.stderr)
            print(f"resume with: repro campaign --resume {directory}")
            return 1
    finally:
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    status = "OK" if report.ok else "INCOMPLETE"
    cache_note = (
        f", {report.cache_hits} served from result cache"
        if report.cache_hits
        else ""
    )
    print(
        f"campaign {status}: {report.completed} completed, "
        f"{report.skipped} skipped (verified), {len(report.failed)} failed, "
        f"{report.retried_attempts} attempts retried{cache_note}"
    )
    for failed in report.failed:
        last = failed.failures[-1] if failed.failures else None
        detail = f" ({last.kind}: {last.detail})" if last else ""
        print(f"  lost: {failed.task_id} after {failed.attempts} attempts{detail}")
    return 0 if report.ok else 1


def _print_comparison_detail(comparison) -> None:
    """Phase-delta table + host-mismatch warnings of a bench diff."""
    if comparison.phases:
        print("  phase breakdown (current vs baseline):")
        for ph in comparison.phases:
            print(
                f"    {ph.phase:20s} {ph.current_seconds:7.2f}s vs "
                f"{ph.baseline_seconds:7.2f}s  {ph.ratio:5.2f}x"
            )
    for warning in comparison.host_warnings:
        print(f"  WARNING: {warning}")


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        BackendMismatchError,
        BenchMatrix,
        compare_benches,
        load_bench,
        run_bench,
        run_parallel_bench,
        write_bench,
    )

    scale = _resolve_scale(args.scale)
    backend = _check_backend(args.backend)

    if args.explore:
        from .bench.explore import ExploreBenchError, run_explore_bench

        label = args.label if args.label != "engine" else "explore"
        try:
            document = run_explore_bench(scale, label=label, progress=print)
        except ExploreBenchError as exc:
            print(f"explore bench FAILED: {exc}", file=sys.stderr)
            return 1
        path = write_bench(document, args.out)
        print(f"wrote {path}")
        info = document["explore"]
        print(
            f"explore leverage {info['instruction_speedup']:.0f}x "
            f"(floor {info['speedup_floor']:.0f}x) over "
            f"{info['n_points']} points in {info['total_seconds']:.1f}s"
        )
        return 0

    if args.service:
        from .bench.service import (
            ServiceBenchError,
            run_service_bench,
            service_floor_errors,
        )

        label = args.label if args.label != "engine" else "service"
        try:
            document = run_service_bench(
                scale,
                label=label,
                max_shards=args.max_shards,
                progress=print,
            )
        except ServiceBenchError as exc:
            print(f"service bench FAILED: {exc}", file=sys.stderr)
            return 1
        path = write_bench(document, args.out)
        print(f"wrote {path}")
        floor = document["service"]["floor"]
        top = document["service"]["scaling"][-1]
        print(
            f"service scaling: {top['speedup']:.2f}x at "
            f"{top['shards']} shards (byte-identical to single pool); "
            f"floor {floor['min_speedup']:.1f}x at {floor['at_shards']} "
            + ("enforced" if floor["enforced"]
               else "unenforced (degenerate_single_core)")
        )
        if args.baseline is None:
            return 0
        floor_errors = service_floor_errors(document)
        for error in floor_errors:
            print(f"service gate: {error}", file=sys.stderr)
        comparison = compare_benches(
            document, load_bench(args.baseline), threshold=args.threshold
        )
        for case in comparison.cases:
            print(f"  {case.policy:14s} {case.mix:12s} {case.ratio:5.2f}x")
        _print_comparison_detail(comparison)
        print(comparison.summary())
        return 0 if comparison.ok and not floor_errors else 1

    if args.memo:
        from .bench.memo import MemoBenchError, run_memo_bench

        if args.jobs is None:
            jobs = 2
        else:
            try:
                jobs = int(args.jobs)
            except ValueError:
                raise UsageError(
                    "--memo takes a single integer --jobs value"
                ) from None
        label = args.label if args.label != "engine" else "memo"
        try:
            document = run_memo_bench(
                scale, label=label, jobs=jobs, progress=print
            )
        except MemoBenchError as exc:
            print(f"memo bench FAILED: {exc}", file=sys.stderr)
            return 1
        path = write_bench(document, args.out)
        print(f"wrote {path}")
        memo = document["memo"]
        print(
            f"warm campaign speedup {memo['campaign']['speedup']:.1f}x "
            f"({memo['campaign']['units']} units, byte-identical); "
            f"snapshot restore speedup {memo['snapshot']['speedup']:.1f}x"
        )
        if args.baseline is None:
            return 0
        comparison = compare_benches(
            document, load_bench(args.baseline), threshold=args.threshold
        )
        for case in comparison.cases:
            print(f"  {case.policy:14s} {case.mix:12s} {case.ratio:5.2f}x")
        _print_comparison_detail(comparison)
        print(comparison.summary())
        return 0 if comparison.ok else 1

    if args.jobs is not None:
        from .bench.parallel import _parse_jobs_spec

        try:
            jobs_values = _parse_jobs_spec(args.jobs)
        except ValueError as exc:
            raise UsageError(str(exc)) from None
        label = args.label if args.label != "engine" else "parallel"
        document = run_parallel_bench(
            scale, jobs_values=jobs_values, label=label, progress=print
        )
        path = write_bench(document, args.out)
        print(f"wrote {path}")
        warm = document["warm_pool"]
        print(
            f"warm-pool advantage {warm['advantage_geomean']:.2f}x "
            f"over {warm['warm_tasks']} tasks; efficiency at max jobs "
            f"{document['scaling'][-1]['efficiency']:.2f}"
        )
        return 0
    policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    for name in policies:
        _check_choice("policy", name, registered_policies())
    mixes = tuple(m.strip() for m in args.mixes.split(",") if m.strip())
    for name in mixes:
        _check_choice("mix", name, MIX_NAMES)
    matrix = BenchMatrix(
        policies=policies,
        mixes=mixes,
        epochs=args.epochs,
        warmup_epochs=args.warmup_epochs,
        seed=args.seed,
        repeats=args.repeats,
        backend=backend,
    )
    # A non-default backend gets its own artefact name unless the user
    # chose one — BENCH_vectorized.json, not a silently-overwritten
    # BENCH_engine.json.
    label = args.label
    if label == "engine" and backend not in (None, "reference"):
        label = backend
    document = run_bench(scale, matrix=matrix, label=label, progress=print)
    path = write_bench(document, args.out)
    print(f"wrote {path}")
    print(
        f"geomean {document['geomean_mcycles_per_s']:.3f} Mcycles/s "
        f"over {len(document['cases'])} cases"
    )

    if args.baseline is None:
        return 0
    try:
        comparison = compare_benches(
            document,
            load_bench(args.baseline),
            threshold=args.threshold,
            cross_backend=args.cross_backend,
        )
    except BackendMismatchError as exc:
        raise UsageError(str(exc)) from None
    for case in comparison.cases:
        print(f"  {case.policy:10s} {case.mix:6s} {case.ratio:5.2f}x")
    for missing in comparison.missing_cases:
        print(f"  {missing}: not in baseline")
    _print_comparison_detail(comparison)
    print(comparison.summary())
    return 0 if comparison.ok else 1


def cmd_export(args: argparse.Namespace) -> int:
    from .metrics.export import (
        ExportError,
        check_artifacts,
        export_records,
        load_records,
    )

    if args.check:
        checked, errors = check_artifacts(extra_paths=args.paths)
        for error in errors:
            print(f"  FAIL: {error}", file=sys.stderr)
        verdict = "FAILED" if errors else "ok"
        print(
            f"export --check {verdict}: {len(checked)} artefacts, "
            f"{len(errors)} errors"
        )
        return 1 if errors else 0

    if not args.paths:
        raise UsageError("export needs at least one path (or --check)")
    try:
        records = load_records(args.paths)
        text = export_records(records, args.format)
    except ExportError as exc:
        raise UsageError(str(exc)) from None
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text, encoding="utf-8")
        print(f"wrote {out} ({len(records)} records, {args.format})")
    else:
        sys.stdout.write(text)
    return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    from .fsio.doctor import run_doctor

    report = run_doctor(args.paths, repair=args.repair)
    for finding in report.findings:
        print(finding.line(), file=sys.stderr)
    print(report.summary())
    if args.strict:
        return 0 if report.ok else 1
    return 0


def cmd_analytical(args: argparse.Namespace) -> int:
    from .analytical.validate import (
        DEFAULT_REFERENCE,
        TOLERANCES,
        generate_reference,
        load_reference,
        validate_against_reference,
        validation_table,
    )
    from .experiments.common import get_scale

    reference_path = args.reference or DEFAULT_REFERENCE
    if args.regenerate:
        scale = _resolve_scale(args.scale)
        generate_reference(scale, reference_path)
        print(f"wrote {reference_path} ({scale.name} scale)")

    reference = load_reference(reference_path)
    if reference is None:
        raise UsageError(
            f"no reference at {reference_path}; generate one with "
            "'repro analytical --regenerate'"
        )
    scale = get_scale(reference["scale"])
    report = validate_against_reference(reference, scale)
    if args.table:
        print(validation_table(report, TOLERANCES))
    print(report.summary(TOLERANCES))
    return 0 if report.ok(TOLERANCES) else 1


def cmd_explore(args: argparse.Namespace) -> int:
    from .experiments import format_records
    from .explore import (
        OBJECTIVES,
        SPACE_NAMES,
        ExploreError,
        ExploreSettings,
        run_explore,
    )

    if args.resume:
        directory, resume = args.resume, True
    else:
        if not args.out:
            raise UsageError("explore needs --out DIR (or --resume DIR)")
        directory, resume = args.out, False
    scale = _resolve_scale(args.scale)
    _check_choice("space", args.space, SPACE_NAMES)
    _check_choice("objective", args.objective, OBJECTIVES)
    if args.workloads:
        from dataclasses import replace

        scale = replace(scale, mixes=_check_workload_list(args.workloads))
    try:
        settings = ExploreSettings(
            space=args.space,
            eta=args.eta,
            confirm=args.confirm,
            objective=args.objective,
            seed=args.seed,
            backend=_check_backend(args.backend),
        )
        result = run_explore(scale, directory, settings, resume=resume,
                             progress=print)
    except ExploreError as exc:
        raise UsageError(str(exc)) from None

    rows = [
        {
            "point": e.point.key(),
            "mean_ipc": round(e.mean_ipc, 4),
            "llc_hit_rate": round(e.llc_hit_rate, 4),
            "lifetime_s": f"{e.lifetime_seconds:.3g}",
        }
        for e in result.frontier
    ]
    print(format_records(rows, f"Pareto frontier ({settings.objective})"))
    print(
        f"explore ok: {result.n_points} points, {result.n_evaluations} "
        f"analytical evaluations, {len(result.confirmed)} confirmed, "
        f"{result.instruction_speedup:.0f}x fewer simulated instructions "
        "than exhaustive"
    )
    return 0


def cmd_serve_worker(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .service import serve_worker

    serve_worker(
        host=args.host,
        port=args.port,
        announce_path=Path(args.announce) if args.announce else None,
        shard_id=args.shard_id,
        progress=print,
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import LocalShardSet, ServiceServer

    shards = None
    if args.shards:
        shards = [s.strip() for s in args.shards.split(",") if s.strip()]
    fleet = None
    try:
        if args.local_shards:
            if shards:
                raise UsageError("--shards and --local-shards are exclusive")
            from pathlib import Path

            fleet = LocalShardSet(
                args.local_shards, Path(args.root) / "shards"
            )
            shards = fleet.start()
            print(f"spawned {len(shards)} local shards: {', '.join(shards)}")
        server = ServiceServer(
            args.root,
            host=args.host,
            port=args.port,
            shards=shards,
            jobs=args.jobs,
            progress=print,
        )
        server.serve_forever()
    finally:
        if fleet is not None:
            fleet.stop()
    return 0


def _service_client(args: argparse.Namespace):
    from .service import ServiceClient
    from .service.client import ServiceError

    try:
        return ServiceClient(args.endpoint), ServiceError
    except ValueError as exc:
        raise UsageError(str(exc)) from None


def cmd_submit(args: argparse.Namespace) -> int:
    from .experiments import ALL_EXPERIMENT_NAMES

    experiments = [e.strip() for e in args.experiments.split(",") if e.strip()]
    for name in experiments:
        _check_choice("experiment", name, ALL_EXPERIMENT_NAMES)
    scale_name = _resolve_scale(args.scale).name
    client, ServiceError = _service_client(args)
    try:
        if args.resume:
            job_id = client.resume(args.resume)
        else:
            job_id = client.submit(
                experiments=experiments, scale=scale_name, chaos=args.chaos
            )
    except ServiceError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    print(job_id)
    if args.watch:
        return _watch_job(client, ServiceError, job_id)
    return 0


def _format_shard_table(shards: dict) -> List[str]:
    lines = [
        "  shard       tasks  busy_s   wall_s  status",
    ]
    for record in shards.get("shards", ()):
        status = f"DIED ({record['died']})" if record.get("died") else "ok"
        lines.append(
            f"  {record['shard_id']:<10s} {record['tasks_done']:>5d} "
            f"{record['busy_seconds']:>7.2f} {record['wall_seconds']:>8.2f}  "
            f"{status}"
        )
    return lines


def _print_job(job: dict) -> None:
    report = job.get("report") or {}
    print(
        f"{job['job_id']}: {job['status']}  "
        f"[{','.join(job.get('experiments', ()))} @ {job.get('scale')}]"
        + (
            f"  {report.get('completed', 0)}/{report.get('total', 0)} done"
            if report
            else ""
        )
        + (f"  error: {job['error']}" if job.get("error") else "")
    )
    walls = (report or {}).get("shard_walls") or {}
    for shard_id in sorted(walls):
        print(f"  {shard_id}: {walls[shard_id]:.2f}s wall")


def cmd_status(args: argparse.Namespace) -> int:
    if args.path:
        return _campaign_status(args.path)
    if not args.endpoint:
        raise UsageError("status needs --endpoint HOST:PORT or a campaign DIR")
    client, ServiceError = _service_client(args)
    try:
        if args.job:
            _print_job(client.status(args.job))
        else:
            jobs = client.status()
            if not jobs:
                print("no jobs submitted yet")
            for job in jobs:
                _print_job(job)
    except ServiceError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    return 0


def _campaign_status(path: str) -> int:
    import json as _json
    from pathlib import Path

    from .fsio.durable import read_bytes, unwrap_json
    from .harness import CampaignConfigError
    from .harness.manifest import CampaignManifest
    from .harness.scheduler import HEALTH_RECORD_NAME

    try:
        manifest = CampaignManifest.load(Path(path))
    except CampaignConfigError as exc:
        raise UsageError(str(exc)) from None
    by_status: dict = {}
    for entry in manifest.tasks.values():
        by_status[entry.status] = by_status.get(entry.status, 0) + 1
    counts = ", ".join(
        f"{count} {status}" for status, count in sorted(by_status.items())
    )
    print(
        f"campaign {path}: scale={manifest.scale} "
        f"backend={manifest.backend or 'reference'} "
        f"experiments={','.join(manifest.experiments)}"
    )
    print(f"  tasks: {counts or 'none enumerated yet'}")
    if manifest.shards:
        print(f"  last sharded run ({manifest.shards.get('deaths', 0)} deaths):")
        for line in _format_shard_table(manifest.shards):
            print(line)
    health_path = Path(path) / HEALTH_RECORD_NAME
    if health_path.exists():
        record = unwrap_json(
            _json.loads(read_bytes(health_path).decode("utf-8")),
            path=health_path,
        )
        metrics = record.get("metrics", {})
        scheduler = {
            key.split(".", 1)[1]: value
            for key, value in sorted(metrics.items())
            if key.startswith("scheduler.")
        }
        print(
            "  last run: "
            + ", ".join(f"{key}={value}" for key, value in scheduler.items())
        )
    return 0


def _watch_job(client, ServiceError, job_id: str) -> int:
    def on_event(event: dict) -> None:
        kind = event.get("event", "?")
        task = event.get("task_id")
        detail = f" {task}" if task else ""
        extras = {
            key: event[key]
            for key in ("shard", "completed", "total", "kind", "reason", "ok")
            if key in event
        }
        suffix = (
            " [" + ", ".join(f"{k}={v}" for k, v in extras.items()) + "]"
            if extras
            else ""
        )
        print(f"  {kind}{detail}{suffix}")

    try:
        job = client.watch(job_id, on_event=on_event, timeout=3600.0)
    except ServiceError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    _print_job(job)
    return 0 if job.get("status") == "done" else 1


def cmd_watch(args: argparse.Namespace) -> int:
    client, ServiceError = _service_client(args)
    return _watch_job(client, ServiceError, args.job_id)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid-LLC compression-aware insertion policies (HPCA'23)",
    )
    parser.add_argument("--scale", default=None,
                        help="smoke | default | full | paper (default: env)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list policies, mixes, apps").set_defaults(
        func=cmd_list
    )

    p = sub.add_parser(
        "workloads",
        help="list workload families/targets with metadata, or --import "
             "an external trace as a new target",
    )
    p.add_argument("--family", default=None,
                   help="only list this family's targets")
    p.add_argument("--import", dest="import_source", default=None,
                   metavar="CSV",
                   help="import an interchange CSV (core,gap,addr,is_write "
                        "per line) as an external target")
    p.add_argument("--name", default=None,
                   help="target name the import registers (--import)")
    p.add_argument("--root", default=None, metavar="DIR",
                   help="external workload root (default: env "
                        "REPRO_EXTERNAL_WORKLOADS)")
    p.add_argument("--cores", type=int, default=4,
                   help="core count declared by the imported trace")
    p.add_argument("--hcr", type=float, default=0.5,
                   help="declared fraction of highly-compressible blocks")
    p.add_argument("--lcr", type=float, default=0.28,
                   help="declared fraction of lightly-compressible blocks")
    p.add_argument("--addr-kind", default="block", choices=("block", "byte"),
                   help="address column unit of the CSV (byte addresses "
                        "are shifted to 64B blocks on import)")
    p.add_argument("--seed", type=int, default=0,
                   help="size-draw seed recorded in the target identity")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("simulate", help="run one mix under one policy")
    p.add_argument("--mix", default="mix1",
                   help="mix name or family:target workload ref "
                        "(see: repro workloads)")
    p.add_argument("--policy", default="cp_sd",
                   help="name or name:key=val (e.g. ca_rwr:cpth=37)")
    p.add_argument("--epochs", type=float, default=4.0)
    p.add_argument("--warmup-epochs", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", default=None, metavar="DIR",
                   help="dump a cProfile .pstats of the run into DIR "
                        "(labelled with the active backend)")
    p.add_argument("--backend", default=None,
                   help="engine backend: reference | vectorized "
                        "(default: env REPRO_BACKEND, then reference)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("forecast", help="lifetime forecast for policies")
    p.add_argument("--mix", default="mix1",
                   help="mix name or family:target workload ref")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("policies", nargs="+",
                   help="e.g. bh lhybrid cp_sd cp_sd_th:th=8")
    p.set_defaults(func=cmd_forecast)

    p = sub.add_parser("figure", help="regenerate a paper table/figure")
    p.add_argument("id", help=f"one of {sorted(_FIGURES)}")
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("ablation", help="run a design-choice ablation")
    p.add_argument("id", help=f"one of {sorted(_ABLATIONS)}")
    p.set_defaults(func=cmd_ablation)

    p = sub.add_parser(
        "campaign",
        help="fault-tolerant multi-experiment run with checkpoint/resume",
    )
    p.add_argument("--scale", default=argparse.SUPPRESS,
                   help="smoke | default | full | paper (default: env)")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="campaign directory to create")
    p.add_argument("--resume", default=None, metavar="DIR",
                   help="existing campaign directory to resume")
    p.add_argument("--experiments", default=",".join(EXPERIMENT_NAMES),
                   help=f"comma-separated subset of {EXPERIMENT_NAMES}")
    p.add_argument("--workloads", default=None, metavar="REFS",
                   help="comma-separated family:target workload refs "
                        "replacing the scale's default mixes (recorded in "
                        "the manifest; --resume reuses them)")
    p.add_argument("--jobs", type=int, default=None,
                   help="parallel worker processes")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="per-task deadline in seconds")
    p.add_argument("--retries", type=int, default=3,
                   help="retry budget per task")
    p.add_argument("--backoff", type=float, default=1.0,
                   help="base of the exponential retry backoff, seconds")
    p.add_argument("--seed", type=int, default=0,
                   help="chaos injection seed")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="inject faults, e.g. p=0.3,kinds=crash,timeout,corrupt")
    p.add_argument("--profile", default=None, metavar="DIR",
                   help="each worker dumps DIR/<task_id>_<backend>.pstats")
    p.add_argument("--backend", default=None,
                   help="engine backend for every worker: reference | "
                        "vectorized (exported as REPRO_BACKEND; recorded "
                        "in the campaign manifest)")
    p.add_argument("--isolate-tasks", action="store_true",
                   help="fresh worker process per task attempt instead of "
                        "the persistent warm-cache pool")
    p.add_argument("--result-cache", default=None, metavar="DIR",
                   help="content-addressed result cache directory "
                        "(default: <campaign>/result_cache, or "
                        "REPRO_RESULT_CACHE)")
    p.add_argument("--no-result-cache", action="store_true",
                   help="always recompute units, never serve cached results")
    p.add_argument("--shards", default=None, metavar="ENDPOINTS",
                   help="comma-separated host:port of running serve-worker "
                        "shards; dispatches the task graph across them "
                        "instead of a local pool")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "bench", help="benchmark engine speed, optionally gate on a baseline"
    )
    p.add_argument("--scale", default=argparse.SUPPRESS,
                   help="smoke | default | full | paper (default: env)")
    p.add_argument("--label", default="engine",
                   help="artefact name: BENCH_<label>.json")
    p.add_argument("--policies", default=",".join(
        ("bh", "bh_cp", "lhybrid", "tap", "ca", "ca_rwr", "cp_sd")),
        help="comma-separated policy names")
    p.add_argument("--mixes", default="mix1,mix4",
                   help="comma-separated mix names")
    p.add_argument("--epochs", type=float, default=2.0)
    p.add_argument("--warmup-epochs", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--repeats", type=int, default=1,
                   help="timing repeats per case (best-of is reported)")
    p.add_argument("--jobs", default=None, metavar="SPEC",
                   help="parallel scaling mode: run bench_cells campaigns "
                        "at these job counts ('auto' = 1 and cpu_count, or "
                        "e.g. '1,4,8'); writes BENCH_parallel.json")
    p.add_argument("--memo", action="store_true",
                   help="memoization mode: time a cold vs cache-served "
                        "campaign pass (verified byte-identical) plus a "
                        "snapshot warm-start; writes BENCH_memo.json")
    p.add_argument("--explore", action="store_true",
                   help="explorer mode: run the full default design space "
                        "through the analytical screening tier, measure "
                        "the simulated-instruction speedup vs exhaustive "
                        "(gated at 50x); writes BENCH_explore.json")
    p.add_argument("--service", action="store_true",
                   help="service mode: run the bench campaign on 1..N "
                        "local shard processes, gate byte-identity vs the "
                        "single-pool run and the 2-shard throughput floor; "
                        "writes BENCH_service.json")
    p.add_argument("--max-shards", type=int, default=2,
                   help="largest shard count the --service bench sweeps")
    p.add_argument("--out", default="benchmarks/results", metavar="DIR",
                   help="directory for BENCH_<label>.json")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="BENCH_*.json to diff against; regression exits 1")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="allowed geomean ratio band around 1.0")
    p.add_argument("--backend", default=None,
                   help="engine backend to time: reference | vectorized "
                        "(default: env REPRO_BACKEND, then reference); "
                        "non-reference backends default the label to the "
                        "backend name")
    p.add_argument("--cross-backend", action="store_true",
                   help="allow --baseline from a different engine backend "
                        "(refused otherwise: cross-backend ratios measure "
                        "the backend, not a regression)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "export",
        help="export RunRecord artefacts (files or campaign dirs) "
             "to json/csv/jsonl/prom, or --check committed artefacts",
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="result files, BENCH_*.json artefacts, or "
                        "campaign directories")
    p.add_argument("--format", default="json",
                   choices=("json", "csv", "jsonl", "prom"),
                   help="output format (default: json)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write to FILE instead of stdout")
    p.add_argument("--check", action="store_true",
                   help="validate committed BENCH_*.json artefacts and "
                        "golden digests against the current schema; "
                        "extra PATHs are checked too; exits 1 on drift")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser(
        "doctor",
        help="audit artefact integrity: envelopes, checksums, schemas, "
             "stale fingerprints; reports a failure taxonomy",
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="artefact files, campaign directories, or cache "
                        "directories (default: the committed bench "
                        "artefacts and golden digests)")
    p.add_argument("--repair", action="store_true",
                   help="move corrupt artefacts to quarantine/ with a "
                        "structured reason record")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on any corruption finding (CI gate); "
                        "warnings (stale cache entries) never fail")
    p.set_defaults(func=cmd_doctor)

    p = sub.add_parser(
        "analytical",
        help="validate the closed-form estimator against the committed "
             "reference matrix (exit 1 when a mean error leaves its "
             "documented tolerance)",
    )
    p.add_argument("--scale", default=argparse.SUPPRESS,
                   help="scale for --regenerate (default: env)")
    p.add_argument("--reference", default=None, metavar="FILE",
                   help="reference blob (default: "
                        "benchmarks/results/validation/REFERENCE_smoke.json)")
    p.add_argument("--regenerate", action="store_true",
                   help="re-simulate the validation matrix and rewrite "
                        "the reference blob before validating")
    p.add_argument("--table", action="store_true",
                   help="print the per-case markdown table (the one "
                        "committed to docs/analytical_validation.md)")
    p.set_defaults(func=cmd_analytical)

    p = sub.add_parser(
        "explore",
        help="successive-halving design-space sweep: analytical "
             "screening, simulated confirmation, Pareto frontier",
    )
    p.add_argument("--scale", default=argparse.SUPPRESS,
                   help="smoke | default | full | paper (default: env)")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="exploration directory to create")
    p.add_argument("--resume", default=None, metavar="DIR",
                   help="existing exploration directory to resume")
    p.add_argument("--space", default="default",
                   help="design space: default (1008 points) | tiny (CI)")
    p.add_argument("--workloads", default=None, metavar="REFS",
                   help="comma-separated family:target workload refs "
                        "replacing the scale's default mixes")
    p.add_argument("--eta", type=int, default=4,
                   help="successive-halving keep ratio (keep 1/eta per rung)")
    p.add_argument("--confirm", type=int, default=16,
                   help="survivors confirmed with real simulations")
    p.add_argument("--objective", default="balanced",
                   help="rung scoring: performance | lifetime | balanced")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed of the rung fidelity ladder")
    p.add_argument("--backend", default=None,
                   help="engine backend for the confirmation simulations: "
                        "reference | vectorized (default: env "
                        "REPRO_BACKEND, then reference)")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser(
        "serve",
        help="run the campaign service: job queue, sharded or local "
             "execution, streaming telemetry, Prometheus /metrics",
    )
    p.add_argument("--root", required=True, metavar="DIR",
                   help="service root (ledger, jobs, shared result cache)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = kernel-assigned; see the announce "
                        "file <root>/service.announce.json)")
    p.add_argument("--shards", default=None, metavar="ENDPOINTS",
                   help="comma-separated host:port of running serve-worker "
                        "shards jobs execute on")
    p.add_argument("--local-shards", type=int, default=0, metavar="N",
                   help="spawn N serve-worker subprocesses under "
                        "<root>/shards and execute jobs on them")
    p.add_argument("--jobs", type=int, default=None,
                   help="local-pool workers per job when not sharded")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "serve-worker",
        help="run one shard: executes campaign task payloads for a "
             "controller over a socket; outlives controller sessions",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = kernel-assigned)")
    p.add_argument("--announce", default=None, metavar="FILE",
                   help="write a checksummed announce file with the bound "
                        "endpoint (how controllers find a port-0 shard)")
    p.add_argument("--shard-id", default=None,
                   help="identity reported to controllers (default: pid)")
    p.set_defaults(func=cmd_serve_worker)

    p = sub.add_parser(
        "submit", help="enqueue a sweep on a running service (async)"
    )
    p.add_argument("--scale", default=argparse.SUPPRESS,
                   help="smoke | default | full | paper (default: env)")
    p.add_argument("--endpoint", required=True, metavar="HOST:PORT",
                   help="service endpoint (or path to its announce file)")
    p.add_argument("--experiments", default=",".join(EXPERIMENT_NAMES),
                   help=f"comma-separated subset of {EXPERIMENT_NAMES}")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="chaos spec forwarded to the job's campaign")
    p.add_argument("--resume", default=None, metavar="JOB",
                   help="re-queue this finished/failed job instead of "
                        "submitting a new one (completed units skipped)")
    p.add_argument("--watch", action="store_true",
                   help="stay attached and stream the job's events")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "status",
        help="job ledger of a service (--endpoint) or shard/task "
             "summary of a campaign directory (DIR)",
    )
    p.add_argument("path", nargs="?", default=None, metavar="DIR",
                   help="campaign directory to summarise")
    p.add_argument("--endpoint", default=None, metavar="HOST:PORT",
                   help="service endpoint (or path to its announce file)")
    p.add_argument("--job", default=None, metavar="JOB",
                   help="show one job instead of the whole ledger")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "watch", help="stream a job's per-unit progress events live"
    )
    p.add_argument("job_id", metavar="JOB")
    p.add_argument("--endpoint", required=True, metavar="HOST:PORT",
                   help="service endpoint (or path to its announce file)")
    p.set_defaults(func=cmd_watch)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "func", None) is cmd_campaign and args.jobs is None:
        import os

        # No hidden clamp: default to every core (the old min(4, ...)
        # silently serialised campaigns on wide machines).
        args.jobs = max(1, os.cpu_count() or 1)
    try:
        return args.func(args)
    except UsageError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
