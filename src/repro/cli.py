"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``      — registered policies, mixes, applications, scales
``simulate``  — run one mix under one policy, print the statistics
``forecast``  — lifetime forecast for one or more policies on a mix
``figure``    — regenerate one of the paper's tables/figures
``ablation``  — run one of the design-choice ablations
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import make_policy, registered_policies
from .engine import Simulation
from .experiments import (
    format_records,
    get_scale,
    run_compressor_ablation,
    run_cpth_sweep,
    run_energy_study,
    run_epoch_size_sweep,
    run_fig2,
    run_fig8a,
    run_fig9,
    run_fig11c_equal_cost,
    run_lifetime_study,
    run_migration_ablation,
    run_wear_leveling_study,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)
from .forecast import SECONDS_PER_MONTH, Forecaster
from .workloads import APP_NAMES, MIX_NAMES


def _policy_args(value: str):
    """Parse ``name`` or ``name:key=val,key=val`` policy specs."""
    if ":" not in value:
        return value, {}
    name, _, raw = value.partition(":")
    kwargs = {}
    for pair in raw.split(","):
        key, _, val = pair.partition("=")
        try:
            kwargs[key] = int(val)
        except ValueError:
            kwargs[key] = float(val)
    return name, kwargs


def cmd_list(args: argparse.Namespace) -> int:
    print("policies:", ", ".join(registered_policies()))
    print("mixes   :", ", ".join(MIX_NAMES))
    print("apps    :", ", ".join(APP_NAMES))
    print("scales  : smoke, default, full, paper  (env REPRO_SCALE)")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    config = scale.system()
    name, kwargs = _policy_args(args.policy)
    policy = make_policy(name, **kwargs)
    workload = scale.workload(args.mix, seed=args.seed)
    sim = Simulation(config, policy, workload)
    epoch = config.dueling.epoch_cycles
    result = sim.run(
        cycles=epoch * (args.warmup_epochs + args.epochs),
        warmup_cycles=epoch * args.warmup_epochs,
    )
    llc = result.stats.llc
    rows = [
        {"metric": "mean IPC", "value": result.mean_ipc},
        {"metric": "LLC hit rate", "value": llc.hit_rate},
        {"metric": "LLC accesses", "value": llc.accesses},
        {"metric": "hits SRAM / NVM", "value": f"{llc.hits_sram} / {llc.hits_nvm}"},
        {"metric": "fills SRAM / NVM", "value": f"{llc.fills_sram} / {llc.fills_nvm}"},
        {"metric": "NVM bytes written", "value": llc.nvm_bytes_written},
        {"metric": "migrations to NVM", "value": llc.migrations_to_nvm},
        {"metric": "memory writebacks", "value": llc.writebacks_to_memory},
    ]
    print(format_records(rows, f"{name} on {args.mix} ({scale.name} scale)"))
    return 0


def cmd_forecast(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    config = scale.system()
    epoch = config.dueling.epoch_cycles
    rows = []
    baseline_seconds = None
    for spec in args.policies:
        name, kwargs = _policy_args(spec)
        policy = make_policy(name, **kwargs)
        forecaster = Forecaster(
            config,
            policy,
            scale.workload(args.mix, seed=args.seed),
            phase_cycles=epoch * 3,
            initial_warmup_cycles=epoch * 10,
            rewarm_cycles=epoch * 0.75,
            capacity_step=0.1,
            max_steps=scale.forecast_max_steps,
        )
        result = forecaster.run()
        seconds = result.lifetime_or_horizon_seconds()
        if baseline_seconds is None:
            baseline_seconds = seconds
        rows.append(
            {
                "policy": spec,
                "initial_ipc": result.initial_ipc,
                "lifetime_months": seconds / SECONDS_PER_MONTH,
                "vs_first": seconds / baseline_seconds,
                "hit_50pct": "yes" if result.reached_stop else "plateau",
            }
        )
    print(format_records(rows, f"Lifetime forecast on {args.mix}"))
    return 0


_FIGURES = {
    "table1": lambda scale: format_records(table1_rows(), "Table I"),
    "table2": lambda scale: format_records(table2_rows(), "Table II"),
    "table3": lambda scale: format_records(table3_rows(), "Table III"),
    "table4": lambda scale: format_records(table4_rows(), "Table IV"),
    "table5": lambda scale: format_records(table5_rows(), "Table V"),
    "fig2": lambda scale: format_records(
        [r.__dict__ for r in run_fig2(n_blocks=256)], "Fig. 2"
    ),
    "fig6": lambda scale: format_records(run_cpth_sweep(scale).rows(), "Figs. 6/7"),
    "fig8a": lambda scale: format_records(
        [{"config": d.label, **{str(k): v for k, v in d.shares.items()}}
         for d in run_fig8a(scale, capacities_pct=(100, 80, 60, 50),
                            mixes=scale.mixes[:2])],
        "Fig. 8a",
    ),
    "fig9": lambda scale: format_records(
        [p.__dict__ for p in run_fig9(scale, th_values=(0.0, 4.0, 8.0),
                                      capacities_pct=(100, 80),
                                      mixes=scale.mixes[:2])],
        "Fig. 9",
    ),
    "fig10a": lambda scale: format_records(
        run_lifetime_study(scale, label="fig10a").rows(), "Fig. 10a"
    ),
    "fig11c": lambda scale: format_records(
        run_fig11c_equal_cost(scale, mixes=scale.mixes[:2]), "Fig. 11c"
    ),
}

_ABLATIONS = {
    "epoch": run_epoch_size_sweep,
    "migration": run_migration_ablation,
    "compressor": run_compressor_ablation,
    "wear_leveling": lambda scale: run_wear_leveling_study(),
    "energy": run_energy_study,
}


def cmd_figure(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    try:
        runner = _FIGURES[args.id]
    except KeyError:
        print(f"unknown figure {args.id!r}; choose from {sorted(_FIGURES)}")
        return 2
    print(runner(scale))
    return 0


def cmd_ablation(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    try:
        runner = _ABLATIONS[args.id]
    except KeyError:
        print(f"unknown ablation {args.id!r}; choose from {sorted(_ABLATIONS)}")
        return 2
    print(format_records(runner(scale), f"ablation: {args.id}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid-LLC compression-aware insertion policies (HPCA'23)",
    )
    parser.add_argument("--scale", default=None,
                        help="smoke | default | full | paper (default: env)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list policies, mixes, apps").set_defaults(
        func=cmd_list
    )

    p = sub.add_parser("simulate", help="run one mix under one policy")
    p.add_argument("--mix", default="mix1")
    p.add_argument("--policy", default="cp_sd",
                   help="name or name:key=val (e.g. ca_rwr:cpth=37)")
    p.add_argument("--epochs", type=float, default=4.0)
    p.add_argument("--warmup-epochs", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("forecast", help="lifetime forecast for policies")
    p.add_argument("--mix", default="mix1")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("policies", nargs="+",
                   help="e.g. bh lhybrid cp_sd cp_sd_th:th=8")
    p.set_defaults(func=cmd_forecast)

    p = sub.add_parser("figure", help="regenerate a paper table/figure")
    p.add_argument("id", help=f"one of {sorted(_FIGURES)}")
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("ablation", help="run a design-choice ablation")
    p.add_argument("id", help=f"one of {sorted(_ABLATIONS)}")
    p.set_defaults(func=cmd_ablation)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
