"""The lifetime forecasting procedure (Sec. V-A, adapted from [15]).

The procedure alternates *simulation* and *prediction* phases:

1. **simulate** — run the hierarchy for a phase (with a short re-warm
   after each capacity change) and measure, per NVM frame, the byte-
   write rate (byte-disabling) or frame-write rate (frame-disabling),
   plus IPC and hit rate;
2. **predict** — assuming the measured rates persist, advance the
   aging model until the NVM loses the next slice of effective
   capacity, update the fault map, evict blocks that no longer fit,
   and continue simulating from the aged state.

The loop records one :class:`ForecastPoint` per phase and stops when
effective capacity reaches the stop fraction (50 % in the paper), the
step budget is exhausted, or the write rate is too low to reach the
next capacity milestone within the horizon (the curve has plateaued —
how LHybrid-style policies exit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..config import SystemConfig
from ..core.policy import InsertionPolicy
from ..engine import Simulation, Workload
from .aging import AgingModel

SECONDS_PER_MONTH = 30.44 * 24 * 3600.0


@dataclass(frozen=True)
class ForecastPoint:
    """State of the system at one point of its lifetime."""

    time_seconds: float          # age of the NVM when the phase ran
    capacity_fraction: float     # NVM effective capacity in [0, 1]
    ipc: float                   # workload mean IPC measured in the phase
    hit_rate: float
    nvm_bytes_per_second: float  # aggregate write pressure

    @property
    def time_months(self) -> float:
        return self.time_seconds / SECONDS_PER_MONTH


@dataclass
class ForecastResult:
    """IPC/capacity evolution of one policy over the NVM lifetime."""

    policy: str
    points: List[ForecastPoint] = field(default_factory=list)
    reached_stop: bool = False
    horizon_seconds: float = 0.0

    @property
    def initial_ipc(self) -> float:
        return self.points[0].ipc if self.points else 0.0

    def lifetime_seconds(self, capacity_fraction: float = 0.5) -> Optional[float]:
        """Time at which capacity first crosses ``capacity_fraction``.

        Linear interpolation between phases; None if never reached
        (the forecast plateaued above the target — treat the horizon
        as a lower bound on lifetime).
        """
        prev = None
        for point in self.points:
            if point.capacity_fraction <= capacity_fraction:
                if prev is None or prev.capacity_fraction == point.capacity_fraction:
                    return point.time_seconds
                span = prev.capacity_fraction - point.capacity_fraction
                frac = (prev.capacity_fraction - capacity_fraction) / span
                return prev.time_seconds + frac * (
                    point.time_seconds - prev.time_seconds
                )
            prev = point
        return None

    def lifetime_months(self, capacity_fraction: float = 0.5) -> Optional[float]:
        seconds = self.lifetime_seconds(capacity_fraction)
        return None if seconds is None else seconds / SECONDS_PER_MONTH

    def lifetime_or_horizon_seconds(self, capacity_fraction: float = 0.5) -> float:
        """Lifetime, or the forecast horizon when the curve plateaued."""
        seconds = self.lifetime_seconds(capacity_fraction)
        return self.horizon_seconds if seconds is None else seconds

    def ipc_at(self, time_seconds: float) -> float:
        """IPC at an arbitrary time (step interpolation between phases)."""
        if not self.points:
            return 0.0
        ipc = self.points[0].ipc
        for point in self.points:
            if point.time_seconds > time_seconds:
                break
            ipc = point.ipc
        return ipc

    def mean_ipc_over(self, horizon_seconds: float) -> float:
        """Time-weighted mean IPC from 0 to ``horizon_seconds``."""
        if not self.points:
            return 0.0
        total = 0.0
        for i, point in enumerate(self.points):
            start = point.time_seconds
            end = (
                self.points[i + 1].time_seconds
                if i + 1 < len(self.points)
                else max(horizon_seconds, start)
            )
            start = min(start, horizon_seconds)
            end = min(end, horizon_seconds)
            total += point.ipc * (end - start)
        return total / horizon_seconds if horizon_seconds > 0 else 0.0


class Forecaster:
    """Run the simulate/predict alternation for one policy."""

    def __init__(
        self,
        config: SystemConfig,
        policy: InsertionPolicy,
        workload: Workload,
        *,
        phase_cycles: float,
        initial_warmup_cycles: float,
        rewarm_cycles: Optional[float] = None,
        capacity_step: float = 0.05,
        stop_fraction: float = 0.5,
        max_steps: int = 12,
        max_years: float = 40.0,
        smooth_rates: bool = True,
    ) -> None:
        self.config = config
        self.policy = policy
        self.workload = workload
        self.phase_cycles = phase_cycles
        self.initial_warmup_cycles = initial_warmup_cycles
        self.rewarm_cycles = (
            rewarm_cycles if rewarm_cycles is not None else phase_cycles / 4
        )
        self.capacity_step = capacity_step
        self.stop_fraction = stop_fraction
        self.max_steps = max_steps
        self.max_seconds = max_years * 365.25 * 24 * 3600.0
        self.smooth_rates = smooth_rates

    def _smoothed(self, raw, capacities):
        """Pool measured per-frame rates within each set.

        A short simulation phase samples only a fraction of the frames
        a policy will eventually write (conservative policies touch a
        few hundred frames per phase); extrapolating raw per-frame
        rates would leave the unsampled frames immortal.  Replacement
        rotates victims within a set over the long run, so the set
        total is redistributed over the set's frames — weighted by
        live capacity for byte-disabling (fit-LRU steers blocks toward
        roomier frames) and uniformly over live frames for
        frame-disabling.
        """
        import numpy as np

        set_totals = raw.sum(axis=1, keepdims=True)
        caps = np.asarray(capacities, dtype=np.float64)
        if self.policy.granularity == "frame":
            weights = (caps > 0).astype(np.float64)
        else:
            weights = caps
        norm = weights.sum(axis=1, keepdims=True)
        np.maximum(norm, 1e-12, out=norm)
        return set_totals * (weights / norm)

    def _first_phase(self, sim: Simulation, warmup: float):
        """Step-0 phase, warm-started from the snapshot store if possible.

        A fresh simulation's relative clock equals the absolute clock,
        so ``run(warmup + phase, warmup_cycles=warmup)`` is exactly
        ``run_until(warmup, warmup)`` + ``run_until(warmup + phase,
        warmup)`` — which lets the warmup half be snapshotted/restored
        without perturbing a single statistic.
        """
        from ..memo.snapshots import shared_snapshot_store, warm_prefix_key

        store = shared_snapshot_store()
        key = (
            warm_prefix_key(self.config, self.policy, self.workload, warmup)
            if store is not None
            else None
        )
        if key is None:
            return sim.run(
                warmup + self.phase_cycles,
                warmup_cycles=warmup,
                record_epochs=False,
            )
        entry = store.get(key)
        if entry is None:
            sim.run_until(warmup, warmup_until=warmup, record_epochs=False)
            store.put(key, sim.snapshot(), [])
        else:
            sim.restore(entry.snapshot)
        return sim.run_until(
            warmup + self.phase_cycles, warmup_until=warmup, record_epochs=False
        )

    def run(self) -> ForecastResult:
        sim = Simulation(self.config, self.policy, self.workload)
        llc = sim.hierarchy.llc
        geom = self.config.llc
        aging = AgingModel(
            self.config.endurance,
            geom.n_sets,
            geom.nvm_ways,
            geom.block_size,
            granularity=self.policy.granularity,
        )
        result = ForecastResult(policy=self.policy.name)
        elapsed = 0.0
        warmup = self.initial_warmup_cycles
        for step in range(self.max_steps):
            # Epoch records are never consumed here (forecasts read
            # wear rates and phase aggregates), so don't accumulate
            # them across re-entries; the initial warmup prefix is
            # additionally served from the in-process snapshot store
            # when another forecast/figure already simulated it.
            if step == 0 and warmup > 0:
                phase = self._first_phase(sim, warmup)
            else:
                phase = sim.run(
                    warmup + self.phase_cycles,
                    warmup_cycles=warmup,
                    record_epochs=False,
                )
            # A snapshot restore in step 0 replaces sim.hierarchy.
            llc = sim.hierarchy.llc
            warmup = self.rewarm_cycles
            wear = llc.wear
            if self.policy.granularity == "frame":
                rates = wear.writes / phase.seconds
            else:
                rates = wear.bytes_written / phase.seconds
            if self.smooth_rates:
                rates = self._smoothed(rates, llc.faultmap.capacities)
            capacity = aging.effective_capacity()
            result.points.append(
                ForecastPoint(
                    time_seconds=elapsed,
                    capacity_fraction=capacity,
                    ipc=phase.mean_ipc,
                    hit_rate=phase.hit_rate,
                    nvm_bytes_per_second=phase.nvm_bytes_written / phase.seconds,
                )
            )
            if capacity <= self.stop_fraction:
                result.reached_stop = True
                break
            if step == self.max_steps - 1:
                break

            target = max(self.stop_fraction, capacity - self.capacity_step)
            remaining = self.max_seconds - elapsed
            dt = aging.time_to_capacity(rates, target, remaining)
            if dt is None:
                # Write pressure too low: the capacity curve plateaus
                # within the horizon; report the plateau and stop.
                elapsed = self.max_seconds
                result.points.append(
                    ForecastPoint(
                        time_seconds=elapsed,
                        capacity_fraction=aging.effective_capacity(),
                        ipc=phase.mean_ipc,
                        hit_rate=phase.hit_rate,
                        nvm_bytes_per_second=phase.nvm_bytes_written / phase.seconds,
                    )
                )
                break
            aging.advance(rates, dt)
            elapsed += dt
            llc.faultmap.load_capacities(aging.capacities())
            llc.reconcile_faults()
        result.horizon_seconds = max(elapsed, 1.0)
        return result
