"""Scale calibration: translating scaled-run lifetimes to paper scale.

Scaled experiments shrink caches and footprints by ``factor`` while
keeping the per-core access rate (it is set by the instruction-gap
model, not the cache size).  The NVM write traffic therefore spreads
over ``factor`` times fewer frames, so every frame wears roughly
``1/factor`` times faster and absolute lifetimes shrink by the same
amount.  All of the paper's reported quantities are *ratios* and need
no correction; this module exists for readers who want a rough
absolute-months estimate next to them.

The estimate is a first-order heuristic, not a claim: second-order
effects (hit-rate differences across scales, burstiness) are not
corrected.
"""

from __future__ import annotations

from ..forecast.forecaster import SECONDS_PER_MONTH, ForecastResult


def paper_scale_seconds(measured_seconds: float, factor: float) -> float:
    """First-order paper-scale lifetime from a scaled measurement."""
    if factor <= 0 or factor > 1:
        raise ValueError("factor must be in (0, 1]")
    return measured_seconds / factor


def paper_scale_months(measured_seconds: float, factor: float) -> float:
    return paper_scale_seconds(measured_seconds, factor) / SECONDS_PER_MONTH


def calibrated_lifetime_months(
    result: ForecastResult, factor: float, capacity: float = 0.5
) -> float:
    """Paper-scale estimate of a forecast's lifetime-to-``capacity``."""
    return paper_scale_months(
        result.lifetime_or_horizon_seconds(capacity), factor
    )
