"""Lifetime forecasting: aging model + simulate/predict alternation."""

from .aging import AgingModel
from .calibration import (
    calibrated_lifetime_months,
    paper_scale_months,
    paper_scale_seconds,
)
from .forecaster import (
    SECONDS_PER_MONTH,
    ForecastPoint,
    ForecastResult,
    Forecaster,
)

__all__ = [
    "AgingModel",
    "calibrated_lifetime_months",
    "paper_scale_months",
    "paper_scale_seconds",
    "ForecastPoint",
    "ForecastResult",
    "Forecaster",
    "SECONDS_PER_MONTH",
]
