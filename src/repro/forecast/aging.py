"""NVM aging model: per-byte endurance vs accumulated write wear.

Under the intra-frame wear-leveling of Sec. III-B (block rearrangement
plus the slowly rotating global counter), every *live* byte of a frame
receives the same long-run write rate, so a frame's aging state
collapses to a single scalar: the wear ``w`` accumulated by each of
its live bytes.  A byte whose sampled endurance falls below ``w`` is
dead; since only the order statistics of the endurance draws matter,
each frame's endurance vector is kept sorted ascending.

Byte-disabling advances ``w`` piecewise: writing ``B`` bytes to a
frame with ``n`` live bytes adds ``B/n`` wear to each, and as bytes
die the survivors absorb proportionally more wear — the loop below
resolves those death boundaries exactly.

Frame-disabling (BH, LHybrid, TAP) writes whole frames: wear counts
writes, and the frame dies when its weakest byte gives out.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import EnduranceConfig
from ..nvm.endurance import sample_byte_endurance


class AgingModel:
    """Wear state of all NVM frames of one LLC."""

    def __init__(
        self,
        endurance: EnduranceConfig,
        n_sets: int,
        nvm_ways: int,
        block_size: int = 64,
        granularity: str = "byte",
        seed_offset: int = 0,
    ) -> None:
        if granularity not in ("byte", "frame"):
            raise ValueError(f"bad granularity {granularity!r}")
        self.n_sets = n_sets
        self.nvm_ways = nvm_ways
        self.block_size = block_size
        self.granularity = granularity
        self.n_frames = n_sets * nvm_ways
        if self.n_frames:
            self.endurance = sample_byte_endurance(
                endurance, self.n_frames, block_size, seed_offset=seed_offset
            )
        else:
            self.endurance = np.zeros((0, block_size))
        #: per-live-byte wear (byte granularity) or frame write count
        self.wear = np.zeros(self.n_frames, dtype=np.float64)

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------
    def live_counts(self) -> np.ndarray:
        """Live bytes per frame, shape ``(n_frames,)``."""
        if self.granularity == "frame":
            alive = self.wear < self.endurance[:, 0]
            return np.where(alive, self.block_size, 0)
        deaths = np.sum(self.endurance <= self.wear[:, None], axis=1)
        return self.block_size - deaths

    def capacities(self) -> np.ndarray:
        """Frame capacities shaped ``(n_sets, nvm_ways)`` for the fault map."""
        return self.live_counts().reshape(self.n_sets, self.nvm_ways)

    def effective_capacity(self) -> float:
        """Fraction of original NVM byte capacity still usable."""
        total = self.n_frames * self.block_size
        if total == 0:
            return 0.0
        return float(self.live_counts().sum()) / total

    # ------------------------------------------------------------------
    # aging
    # ------------------------------------------------------------------
    def advance(self, rates: np.ndarray, dt_seconds: float) -> None:
        """Age every frame by ``dt_seconds`` of the measured write rates.

        ``rates`` has shape ``(n_sets, nvm_ways)``: bytes/s per frame
        for byte granularity, frame-writes/s for frame granularity.
        """
        if dt_seconds < 0:
            raise ValueError("dt_seconds must be non-negative")
        totals = np.asarray(rates, dtype=np.float64).reshape(-1) * dt_seconds
        if totals.shape != self.wear.shape:
            raise ValueError(f"rates shape {rates.shape} does not match geometry")
        if self.granularity == "frame":
            self.wear += totals
            return
        self._advance_bytes(totals)

    def _advance_bytes(self, total_bytes: np.ndarray) -> None:
        wear = self.wear
        endurance = self.endurance
        block_size = self.block_size
        budget = total_bytes.astype(np.float64).copy()
        frame_ids = np.arange(self.n_frames)
        for _ in range(block_size + 1):
            active = budget > 0
            if not active.any():
                break
            deaths = np.sum(endurance <= wear[:, None], axis=1)
            live = block_size - deaths
            budget[live == 0] = 0.0  # fully dead frames absorb nothing
            active = budget > 0
            if not active.any():
                break
            # dead frames are inactive (budget zeroed above); give them
            # next_e == wear so the vector arithmetic stays finite
            next_e = np.where(
                live > 0,
                endurance[frame_ids, np.minimum(deaths, block_size - 1)],
                wear,
            )
            to_next_death = (next_e - wear) * live
            finishes = active & (budget < to_next_death)
            wear[finishes] += budget[finishes] / live[finishes]
            budget[finishes] = 0.0
            steps = active & ~finishes
            wear[steps] = next_e[steps]
            budget[steps] -= to_next_death[steps]

    # ------------------------------------------------------------------
    def time_to_capacity(
        self,
        rates: np.ndarray,
        target_fraction: float,
        max_seconds: float,
        tolerance: float = 0.01,
    ) -> Optional[float]:
        """Seconds (at constant ``rates``) until capacity <= target.

        Returns None if the target is not reached within ``max_seconds``
        (e.g. a policy that barely writes the NVM part).  Uses an
        exponential bracket plus bisection over cloned wear state.
        """
        if self.effective_capacity() <= target_fraction:
            return 0.0

        def capacity_after(dt: float) -> float:
            probe = self.clone()
            probe.advance(rates, dt)
            return probe.effective_capacity()

        lo, hi = 0.0, 3600.0
        while capacity_after(hi) > target_fraction:
            lo = hi
            hi *= 4.0
            if hi > max_seconds:
                if capacity_after(max_seconds) > target_fraction:
                    return None
                hi = max_seconds
                break
        while hi - lo > tolerance * hi:
            mid = 0.5 * (lo + hi)
            if capacity_after(mid) > target_fraction:
                lo = mid
            else:
                hi = mid
        return hi

    def clone(self) -> "AgingModel":
        other = object.__new__(AgingModel)
        other.n_sets = self.n_sets
        other.nvm_ways = self.nvm_ways
        other.block_size = self.block_size
        other.granularity = self.granularity
        other.n_frames = self.n_frames
        other.endurance = self.endurance  # immutable by convention
        other.wear = self.wear.copy()
        return other
