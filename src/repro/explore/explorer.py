"""Successive-halving design-space exploration over the analytical tier.

The explorer takes a :class:`~repro.explore.space.ExploreSpace` (1000+
configurations), screens every point with the closed-form estimator at
increasing *fidelity* (more mixes, more seeds per rung), keeps the top
``1/eta`` of each rung, and finally **confirms** the handful of
survivors with real warm-snapshot simulations (memoized through
:func:`repro.experiments.common.run_one`).  The Pareto frontier over
(IPC, projected lifetime) is computed from the *confirmed* runs only —
the analytical tier decides what is worth simulating, never what is
reported.

Every artefact is a crash-consistent ``repro.fsio`` envelope under the
output directory:

* ``explore.meta.json`` — the sweep's identity (space, eta, objective,
  scale, rung plan); resume refuses a directory whose meta disagrees;
* ``rung_<r>.json``     — one evaluation per (point, workload) with its
  schema-valid ``repro-run/1`` RunRecord, plus the survivor list;
* ``confirm.json``      — the simulated survivor records;
* ``frontier.json``     — the frontier, the instruction accounting and
  the summary RunRecord.

Interrupted explorations resume: completed rung/confirm artefacts are
verified (checksums) and reused, so a kill after rung *r* re-pays only
rungs *r+1* onwards.  The ``REPRO_EXPLORE_KILL_AFTER`` environment
variable (``rung:<r>`` or ``confirm``) injects a crash right after the
named artefact is durably written — the hook the resume tests and the
ci.sh smoke leg use.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analytical.model import AnalyticalEstimate, AnalyticalModel, PolicyDescriptor
from ..metrics.record import RunRecord
from ..metrics.registry import register_metric
from .space import DesignPoint, ExploreSpace

PathLike = Union[str, Path]
Fidelity = Tuple[str, int]            # (mix, seed)

META_SCHEMA = "repro-explore-meta/1"
RUNG_SCHEMA = "repro-explore-rung/1"
CONFIRM_SCHEMA = "repro-explore-confirm/1"
FRONTIER_SCHEMA = "repro-explore-frontier/1"

META_NAME = "explore.meta.json"

#: Crash-injection hook: ``rung:<r>`` or ``confirm``.
KILL_AFTER_ENV = "REPRO_EXPLORE_KILL_AFTER"

OBJECTIVES = ("performance", "lifetime", "balanced")

register_metric("explore", "points_total", "count",
                "Design points in the explored space", aggregation="last")
register_metric("explore", "evaluations", "count",
                "Analytical (point, workload) evaluations performed",
                aggregation="last")
register_metric("explore", "rungs", "count",
                "Successive-halving rungs executed", aggregation="last")
register_metric("explore", "confirmed", "count",
                "Survivors confirmed by real simulation", aggregation="last")
register_metric("explore", "frontier_size", "count",
                "Points on the confirmed (IPC, lifetime) Pareto frontier",
                aggregation="last")
register_metric("explore", "simulated_instructions", "count",
                "Instructions actually simulated (confirm tier)",
                aggregation="last")
register_metric("explore", "exhaustive_instructions_est", "count",
                "Instructions exhaustive full simulation would have cost",
                aggregation="last")
register_metric("explore", "instruction_speedup", "ratio",
                "Exhaustive-over-actual simulated-instruction ratio",
                aggregation="last")


class ExploreError(Exception):
    """Unusable settings or an artefact that contradicts them."""


class ExploreKilled(RuntimeError):
    """Raised by the crash-injection hook after a durable write."""


@dataclass(frozen=True)
class ExploreSettings:
    """Everything that identifies one exploration run."""

    space: str = "default"
    eta: int = 4
    confirm: int = 16
    objective: str = "balanced"
    seed: int = 0
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.eta < 2:
            raise ExploreError(f"eta must be >= 2, got {self.eta}")
        if self.confirm < 1:
            raise ExploreError(f"confirm must be >= 1, got {self.confirm}")
        if self.objective not in OBJECTIVES:
            raise ExploreError(
                f"unknown objective {self.objective!r}; "
                f"choose from {', '.join(OBJECTIVES)}"
            )


@dataclass
class Evaluation:
    """One point's aggregate outcome at one rung's fidelity."""

    point: DesignPoint
    mean_ipc: float
    llc_hit_rate: float
    nvm_write_rate: float
    lifetime_seconds: float
    records: List[RunRecord] = field(default_factory=list)
    score: float = 0.0

    def metrics_json(self) -> Dict[str, float]:
        return {
            "mean_ipc": self.mean_ipc,
            "llc_hit_rate": self.llc_hit_rate,
            "nvm_write_rate": self.nvm_write_rate,
            "lifetime_seconds": self.lifetime_seconds,
        }


@dataclass
class ExploreResult:
    """What :meth:`Explorer.run` hands back to the caller."""

    out_dir: Path
    n_points: int
    n_evaluations: int
    n_rungs: int
    confirmed: List[Evaluation]
    frontier: List[Evaluation]
    simulated_instructions: float
    exhaustive_instructions_est: float

    @property
    def instruction_speedup(self) -> float:
        if self.simulated_instructions <= 0:
            return float("inf")
        return self.exhaustive_instructions_est / self.simulated_instructions

    def summary_record(self) -> RunRecord:
        record = RunRecord(kind="explore", meta={
            "out_dir": str(self.out_dir),
        })
        record.metrics["explore.points_total"] = self.n_points
        record.metrics["explore.evaluations"] = self.n_evaluations
        record.metrics["explore.rungs"] = self.n_rungs
        record.metrics["explore.confirmed"] = len(self.confirmed)
        record.metrics["explore.frontier_size"] = len(self.frontier)
        record.metrics["explore.simulated_instructions"] = (
            self.simulated_instructions)
        record.metrics["explore.exhaustive_instructions_est"] = (
            self.exhaustive_instructions_est)
        record.metrics["explore.instruction_speedup"] = (
            self.instruction_speedup
            if math.isfinite(self.instruction_speedup) else 0.0
        )
        return record


def rung_plan(scale, seed: int) -> List[List[Fidelity]]:
    """Fidelity ladder: one mix, then every mix, then a second seed."""
    mixes = list(scale.mixes)
    plan: List[List[Fidelity]] = [[(mixes[0], seed)]]
    if len(mixes) > 1:
        plan.append([(m, seed) for m in mixes])
    plan.append([(m, s) for s in (seed, seed + 1) for m in mixes])
    return plan


def pareto_front(evaluations: Sequence[Evaluation]) -> List[Evaluation]:
    """Non-dominated subset maximising (mean_ipc, lifetime_seconds)."""
    front: List[Evaluation] = []
    for cand in evaluations:
        dominated = any(
            other.mean_ipc >= cand.mean_ipc
            and other.lifetime_seconds >= cand.lifetime_seconds
            and (other.mean_ipc > cand.mean_ipc
                 or other.lifetime_seconds > cand.lifetime_seconds)
            for other in evaluations
        )
        if not dominated:
            front.append(cand)
    front.sort(key=lambda e: (-e.mean_ipc, e.point.key()))
    return front


def _apply_scores(cohort: List[Evaluation], objective: str) -> None:
    if objective == "performance":
        for e in cohort:
            e.score = e.mean_ipc
        return
    if objective == "lifetime":
        for e in cohort:
            e.score = e.lifetime_seconds
        return
    ipc_max = max((e.mean_ipc for e in cohort), default=0.0) or 1.0
    life_max = max((e.lifetime_seconds for e in cohort
                    if math.isfinite(e.lifetime_seconds)), default=0.0) or 1.0
    for e in cohort:
        life = (e.lifetime_seconds / life_max
                if math.isfinite(e.lifetime_seconds) else 1.0)
        e.score = (e.mean_ipc / ipc_max) * life


class Explorer:
    """One exploration run bound to (scale, out_dir, settings)."""

    def __init__(
        self,
        scale,
        out_dir: PathLike,
        settings: ExploreSettings = ExploreSettings(),
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.scale = scale
        self.out_dir = Path(out_dir)
        self.settings = settings
        self.space = ExploreSpace.by_name(settings.space)
        self.plan = rung_plan(scale, settings.seed)
        self._progress = progress or (lambda message: None)
        self._models: Dict[Tuple[int, int, float], AnalyticalModel] = {}
        self._estimates: Dict[Tuple[Any, ...], AnalyticalEstimate] = {}
        self._workloads: Dict[Fidelity, Any] = {}
        self.n_evaluations = 0

    # -- shared caches -------------------------------------------------
    def _workload(self, fidelity: Fidelity):
        workload = self._workloads.get(fidelity)
        if workload is None:
            workload = self.scale.workload(fidelity[0], seed=fidelity[1])
            self._workloads[fidelity] = workload
        return workload

    def _model(self, point: DesignPoint) -> AnalyticalModel:
        key = (point.sram_ways, point.nvm_ways, point.cv)
        model = self._models.get(key)
        if model is None:
            model = AnalyticalModel(point.system(self.scale))
            self._models[key] = model
        return model

    def _estimate(self, point: DesignPoint,
                  fidelity: Fidelity) -> AnalyticalEstimate:
        """One (point, workload) analytical evaluation.

        Hit/write behaviour is cv-independent, so estimates are cached
        per (policy, way split, workload) and only the lifetime is
        recomputed through the point's own endurance model.
        """
        desc = point.descriptor()
        cache_key = (desc, point.sram_ways, point.nvm_ways, fidelity)
        est = self._estimates.get(cache_key)
        if est is None:
            base = DesignPoint.of(point.policy, sram_ways=point.sram_ways,
                                  nvm_ways=point.nvm_ways,
                                  **dict(point.params))
            est = self._model(base).estimate(self._workload(fidelity), desc)
            self._estimates[cache_key] = est
        lifetime = self._model(point)._lifetime_seconds(
            desc, est.nvm_write_rate)
        return AnalyticalEstimate(
            mean_ipc=est.mean_ipc,
            llc_hit_rate=est.llc_hit_rate,
            nvm_write_rate=est.nvm_write_rate,
            lifetime_seconds=lifetime,
            elected_cpth=est.elected_cpth,
            ipcs=list(est.ipcs),
            details=dict(est.details),
        )

    # -- artefact helpers ----------------------------------------------
    def _path(self, name: str) -> Path:
        return self.out_dir / name

    def _write(self, name: str, payload: Any, schema: str) -> None:
        from ..fsio.durable import write_blob_json

        self.out_dir.mkdir(parents=True, exist_ok=True)
        write_blob_json(self._path(name), payload, schema=schema)

    def _load(self, name: str, schema: str) -> Optional[Any]:
        """A verified artefact's payload, or None if absent/corrupt.

        A corrupt (checksum-failing) artefact is treated as absent —
        the stage recomputes and rewrites it — never trusted.
        """
        from ..fsio.durable import BlobError, unwrap_json

        path = self._path(name)
        if not path.exists():
            return None
        try:
            return unwrap_json(json.loads(path.read_text()), schema=schema,
                               path=path)
        except (ValueError, BlobError):
            return None

    def _maybe_kill(self, stage: str) -> None:
        if os.environ.get(KILL_AFTER_ENV) == stage:
            raise ExploreKilled(
                f"killed by {KILL_AFTER_ENV} after durable write of {stage}"
            )

    # -- meta ----------------------------------------------------------
    def _meta_payload(self) -> Dict[str, Any]:
        return {
            "scale": self.scale.name,
            "space": self.space.name,
            "n_points": len(self.space),
            "eta": self.settings.eta,
            "confirm": self.settings.confirm,
            "objective": self.settings.objective,
            "seed": self.settings.seed,
            "rungs": [
                [{"mix": mix, "seed": seed} for mix, seed in rung]
                for rung in self.plan
            ],
        }

    def _check_meta(self, resume: bool) -> None:
        existing = self._load(META_NAME, META_SCHEMA)
        payload = self._meta_payload()
        if existing is not None:
            if existing != payload:
                raise ExploreError(
                    f"{self._path(META_NAME)} describes a different "
                    "exploration (space/eta/objective/scale mismatch); "
                    "use a fresh --out directory"
                )
            return
        if resume and self._path(META_NAME).exists():
            raise ExploreError(
                f"{self._path(META_NAME)} is corrupt; cannot resume"
            )
        self._write(META_NAME, payload, META_SCHEMA)

    # -- rungs ---------------------------------------------------------
    def _evaluate_cohort(self, cohort: List[DesignPoint],
                         fidelity: List[Fidelity]) -> List[Evaluation]:
        evaluations: List[Evaluation] = []
        for point in cohort:
            records: List[RunRecord] = []
            ipcs: List[float] = []
            hits: List[float] = []
            writes: List[float] = []
            for fid in fidelity:
                est = self._estimate(point, fid)
                self.n_evaluations += 1
                record = est.to_run_record(meta={
                    "policy": {"name": point.policy, **dict(point.params)},
                    "point": point.key(),
                    "mix": fid[0],
                    "seed": fid[1],
                    "estimator": "analytical/1",
                })
                record.validate()
                records.append(record)
                ipcs.append(est.mean_ipc)
                hits.append(est.llc_hit_rate)
                writes.append(est.nvm_write_rate)
            write_rate = sum(writes) / len(writes)
            lifetime = self._model(point)._lifetime_seconds(
                point.descriptor(), write_rate)
            evaluations.append(Evaluation(
                point=point,
                mean_ipc=sum(ipcs) / len(ipcs),
                llc_hit_rate=sum(hits) / len(hits),
                nvm_write_rate=write_rate,
                lifetime_seconds=lifetime,
                records=records,
            ))
        return evaluations

    def _run_rung(self, index: int, cohort: List[DesignPoint]) -> List[DesignPoint]:
        name = f"rung_{index}.json"
        by_key = {p.key(): p for p in cohort}
        cached = self._load(name, RUNG_SCHEMA)
        if cached is not None and set(cached.get("cohort", ())) == set(by_key):
            survivors = [by_key[k] for k in cached["survivors"]]
            self.n_evaluations += int(cached.get("n_evaluations", 0))
            self._progress(
                f"rung {index}: resumed ({len(cohort)} -> "
                f"{len(survivors)} points)"
            )
            return survivors

        fidelity = self.plan[index]
        evaluations = self._evaluate_cohort(cohort, fidelity)
        _apply_scores(evaluations, self.settings.objective)
        evaluations.sort(key=lambda e: (-e.score, e.point.key()))
        keep = max(self.settings.confirm,
                   math.ceil(len(evaluations) / self.settings.eta))
        survivors = [e.point for e in evaluations[:keep]]
        payload = {
            "rung": index,
            "fidelity": [{"mix": m, "seed": s} for m, s in fidelity],
            "cohort": sorted(by_key),
            "n_evaluations": len(evaluations) * len(fidelity),
            "evaluations": [
                {
                    "point": e.point.to_json(),
                    "key": e.point.key(),
                    "score": e.score,
                    "metrics": e.metrics_json(),
                    "records": [r.to_json() for r in e.records],
                }
                for e in evaluations
            ],
            "survivors": [p.key() for p in survivors],
        }
        self._write(name, payload, RUNG_SCHEMA)
        self._progress(
            f"rung {index}: {len(cohort)} points x {len(fidelity)} "
            f"workloads -> kept {len(survivors)}"
        )
        self._maybe_kill(f"rung:{index}")
        return survivors

    # -- confirm tier --------------------------------------------------
    def _confirm(self, survivors: List[DesignPoint]) -> Tuple[List[Evaluation], float]:
        from ..experiments.common import run_one

        name = "confirm.json"
        by_key = {p.key(): p for p in survivors}
        fidelity = [(m, self.settings.seed) for m in self.scale.mixes]
        cached = self._load(name, CONFIRM_SCHEMA)
        if cached is not None and set(
            e["key"] for e in cached.get("evaluations", ())
        ) == set(by_key):
            confirmed = [
                Evaluation(
                    point=DesignPoint.from_json(e["point"]),
                    records=[RunRecord.from_json(r) for r in e["records"]],
                    **e["metrics"],
                )
                for e in cached["evaluations"]
            ]
            self._progress(f"confirm: resumed ({len(confirmed)} points)")
            return confirmed, float(cached["simulated_instructions"])

        confirmed: List[Evaluation] = []
        instructions = 0.0
        for point in sorted(survivors, key=lambda p: p.key()):
            config = point.system(self.scale)
            model = self._model(point)
            desc = point.descriptor()
            records: List[RunRecord] = []
            ipcs: List[float] = []
            hit_rates: List[float] = []
            write_rates: List[float] = []
            for mix, seed in fidelity:
                workload = self._workload((mix, seed))
                record = run_one(
                    config, desc.make(config), workload,
                    self.scale.warmup_epochs, self.scale.phase_epochs,
                    backend=self.settings.backend,
                )
                record.meta["point"] = point.key()
                records.append(record)
                m = record.metrics
                accesses = m["llc.gets"] + m["llc.getx"]
                llc_hits = m["llc.gets_hits"] + m["llc.getx_hits"]
                seconds = m["sim.seconds"] or 0.0
                ipcs.append(m["hierarchy.mean_ipc"])
                hit_rates.append(llc_hits / accesses if accesses else 0.0)
                write_rates.append(
                    m["llc.nvm_bytes_written"] / seconds if seconds else 0.0)
                instructions += float(m["hierarchy.total_instructions"])
            write_rate = sum(write_rates) / len(write_rates)
            confirmed.append(Evaluation(
                point=point,
                mean_ipc=sum(ipcs) / len(ipcs),
                llc_hit_rate=sum(hit_rates) / len(hit_rates),
                nvm_write_rate=write_rate,
                lifetime_seconds=model._lifetime_seconds(desc, write_rate),
                records=records,
            ))
            self._progress(f"confirm: simulated {point.key()}")

        payload = {
            "fidelity": [{"mix": m, "seed": s} for m, s in fidelity],
            "simulated_instructions": instructions,
            "evaluations": [
                {
                    "point": e.point.to_json(),
                    "key": e.point.key(),
                    "metrics": e.metrics_json(),
                    "records": [r.to_json() for r in e.records],
                }
                for e in confirmed
            ],
        }
        self._write(name, payload, CONFIRM_SCHEMA)
        self._maybe_kill("confirm")
        return confirmed, instructions

    # -- entry point ---------------------------------------------------
    def run(self, resume: bool = False) -> ExploreResult:
        self._check_meta(resume)
        cohort = list(self.space.points)
        for index in range(len(self.plan)):
            cohort = self._run_rung(index, cohort)
        survivors = cohort[: self.settings.confirm]

        confirmed, instructions = self._confirm(survivors)
        frontier = pareto_front(confirmed)

        per_sim = (instructions / max(1, len(confirmed) * len(self.scale.mixes)))
        exhaustive = per_sim * len(self.space) * len(self.scale.mixes)
        result = ExploreResult(
            out_dir=self.out_dir,
            n_points=len(self.space),
            n_evaluations=self.n_evaluations,
            n_rungs=len(self.plan),
            confirmed=confirmed,
            frontier=frontier,
            simulated_instructions=instructions,
            exhaustive_instructions_est=exhaustive,
        )
        summary = result.summary_record()
        summary.validate()
        payload = {
            "objective": self.settings.objective,
            "frontier": [
                {
                    "point": e.point.to_json(),
                    "key": e.point.key(),
                    "metrics": e.metrics_json(),
                }
                for e in frontier
            ],
            "confirmed": [e.point.key() for e in confirmed],
            "simulated_instructions": instructions,
            "exhaustive_instructions_est": exhaustive,
            "instruction_speedup": (
                result.instruction_speedup
                if math.isfinite(result.instruction_speedup) else None
            ),
            "summary_record": summary.to_json(),
        }
        self._write("frontier.json", payload, FRONTIER_SCHEMA)
        self._progress(
            f"frontier: {len(frontier)} of {len(confirmed)} confirmed "
            f"points; {result.instruction_speedup:.0f}x fewer simulated "
            "instructions than exhaustive"
        )
        return result


def run_explore(
    scale,
    out_dir: PathLike,
    settings: ExploreSettings = ExploreSettings(),
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> ExploreResult:
    """Convenience wrapper: build an :class:`Explorer` and run it."""
    return Explorer(scale, out_dir, settings, progress=progress).run(
        resume=resume)
