"""Design space of the explorer: every knob the paper sweeps, as data.

A :class:`DesignPoint` is one fully specified LLC configuration — an
insertion policy with its parameters, the SRAM/NVM way split, and the
endurance variability ``cv`` the lifetime projection assumes.  A
:class:`ExploreSpace` is a named, ordered, reproducible collection of
points; :meth:`ExploreSpace.default` enumerates the full ladder the
paper's sensitivity studies span (>1000 points), :meth:`ExploreSpace.tiny`
is the CI smoke grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from ..analytical.model import PolicyDescriptor

#: SRAM/NVM way splits of a 16-way hybrid LLC the paper considers.
WAY_SPLITS: Tuple[Tuple[int, int], ...] = ((2, 14), (4, 12), (6, 10), (8, 8))

#: Endurance variability (cv of the per-byte endurance draw).
CV_VALUES: Tuple[float, ...] = (0.1, 0.2, 0.3)

#: The CP_th candidate ladder (Table IV / set-dueling candidates).
CPTH_LADDER: Tuple[int, ...] = (30, 37, 44, 51, 58, 64)


@dataclass(frozen=True)
class DesignPoint:
    """One candidate configuration of the design space."""

    policy: str
    params: Tuple[Tuple[str, Any], ...]
    sram_ways: int
    nvm_ways: int
    cv: float

    @classmethod
    def of(cls, policy: str, sram_ways: int = 4, nvm_ways: int = 12,
           cv: float = 0.2, **params: Any) -> "DesignPoint":
        return cls(policy=policy, params=tuple(sorted(params.items())),
                   sram_ways=sram_ways, nvm_ways=nvm_ways, cv=cv)

    def descriptor(self) -> PolicyDescriptor:
        return PolicyDescriptor(name=self.policy, params=self.params)

    def system(self, scale):
        """The scaled :class:`SystemConfig` this point runs under."""
        return scale.system(sram_ways=self.sram_ways,
                            nvm_ways=self.nvm_ways, cv=self.cv)

    def key(self) -> str:
        """Stable identity used in artefacts and resume checks."""
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return (f"{self.policy}({inner})@{self.sram_ways}+{self.nvm_ways}"
                f"/cv{self.cv:g}")

    def to_json(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "params": dict(self.params),
            "sram_ways": self.sram_ways,
            "nvm_ways": self.nvm_ways,
            "cv": self.cv,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "DesignPoint":
        return cls.of(data["policy"], sram_ways=data["sram_ways"],
                      nvm_ways=data["nvm_ways"], cv=data["cv"],
                      **data["params"])


@dataclass(frozen=True)
class ExploreSpace:
    """A named, reproducibly ordered set of design points."""

    name: str
    points: Tuple[DesignPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    # ------------------------------------------------------------------
    @classmethod
    def default(cls) -> "ExploreSpace":
        """The full sweep: policies x CP_th ladder x way splits x cv.

        84 policy variants per (split, cv) cell x 4 splits x 3 cv
        values = 1008 points — the ">= 1000 configurations" scale the
        explorer is sized for.
        """
        points: List[DesignPoint] = []
        for sram_ways, nvm_ways in WAY_SPLITS:
            for cv in CV_VALUES:
                def add(policy: str, **params: Any) -> None:
                    points.append(DesignPoint.of(
                        policy, sram_ways=sram_ways, nvm_ways=nvm_ways,
                        cv=cv, **params))

                add("bh")
                add("bh_cp")
                add("sram")
                add("lhybrid")
                for hit_threshold in (1, 2, 3):
                    add("tap", hit_threshold=hit_threshold)
                for cpth in CPTH_LADDER:
                    add("ca", cpth=cpth)
                    add("ca_rwr", cpth=cpth)
                add("cp_sd")
                for th in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0):
                    for tw in (1.25, 2.5, 3.75, 5.0, 6.25, 7.5, 8.75, 10.0):
                        add("cp_sd_th", th=th, tw=tw)
        return cls(name="default", points=tuple(points))

    @classmethod
    def tiny(cls) -> "ExploreSpace":
        """CI smoke grid: a handful of points across every policy kind."""
        points = [
            DesignPoint.of("bh"),
            DesignPoint.of("bh_cp"),
            DesignPoint.of("lhybrid"),
            DesignPoint.of("tap"),
            DesignPoint.of("ca", cpth=44),
            DesignPoint.of("ca", cpth=58),
            DesignPoint.of("ca_rwr", cpth=58),
            DesignPoint.of("ca_rwr", cpth=58, sram_ways=8, nvm_ways=8),
            DesignPoint.of("cp_sd"),
            DesignPoint.of("cp_sd_th", th=4.0, tw=5.0),
            DesignPoint.of("cp_sd_th", th=4.0, tw=5.0, cv=0.3),
            DesignPoint.of("cp_sd_th", th=8.0, tw=2.5),
        ]
        return cls(name="tiny", points=tuple(points))

    @classmethod
    def by_name(cls, name: str) -> "ExploreSpace":
        try:
            return {"default": cls.default, "tiny": cls.tiny}[name]()
        except KeyError:
            raise KeyError(
                f"unknown explore space {name!r}; choose from default, tiny"
            ) from None


#: Valid ``--space`` names.
SPACE_NAMES: Tuple[str, ...] = ("default", "tiny")
