"""Successive-halving design-space exploration (analytical fast path).

``repro explore`` screens 1000+ LLC configurations through the
closed-form estimator in :mod:`repro.analytical`, prunes rung by rung,
confirms the survivors with real warm-snapshot simulations, and emits
a crash-consistent Pareto frontier over (IPC, projected lifetime).
"""

from .explorer import (
    CONFIRM_SCHEMA,
    FRONTIER_SCHEMA,
    KILL_AFTER_ENV,
    META_NAME,
    META_SCHEMA,
    OBJECTIVES,
    RUNG_SCHEMA,
    Evaluation,
    ExploreError,
    ExploreKilled,
    ExploreResult,
    ExploreSettings,
    Explorer,
    pareto_front,
    run_explore,
    rung_plan,
)
from .space import (
    CPTH_LADDER,
    CV_VALUES,
    SPACE_NAMES,
    WAY_SPLITS,
    DesignPoint,
    ExploreSpace,
)

__all__ = [
    "CONFIRM_SCHEMA",
    "CPTH_LADDER",
    "CV_VALUES",
    "DesignPoint",
    "Evaluation",
    "ExploreError",
    "ExploreKilled",
    "ExploreResult",
    "ExploreSettings",
    "ExploreSpace",
    "Explorer",
    "FRONTIER_SCHEMA",
    "KILL_AFTER_ENV",
    "META_NAME",
    "META_SCHEMA",
    "OBJECTIVES",
    "RUNG_SCHEMA",
    "SPACE_NAMES",
    "WAY_SPLITS",
    "pareto_front",
    "run_explore",
    "rung_plan",
]
